package ir

import (
	"fmt"
	"strings"
)

// Op enumerates the instruction kinds of the paper's Table I. CAST is
// folded into Copy (a cast is a points-to-preserving copy), and the two
// interprocedural pseudo-instructions FUNENTRY/FUNEXIT are explicit nodes
// so the SVFG can attach χ/μ value-flows to them.
type Op uint8

const (
	// BadOp is the zero Op; a validated program never contains it.
	BadOp Op = iota
	// Alloc: p = alloc_o — makes p point to object o.
	Alloc
	// Copy: p = q — covers CAST and plain pointer copies.
	Copy
	// Phi: p = φ(q, r, ...) — top-level join.
	Phi
	// Field: p = &q->f_k — field address computation.
	Field
	// Load: p = *q.
	Load
	// Store: *p = q.
	Store
	// Call: p = q(r1..rn) or p = f(r1..rn).
	Call
	// FunEntry: fun(r1..rn) — single entry pseudo-instruction.
	FunEntry
	// FunExit: ret_fun p — single exit pseudo-instruction.
	FunExit
	// MemPhi: o = φ(o, o) — address-taken join, inserted by memory SSA.
	MemPhi
	// CallRet is the receive side of a call site (SVF's ActualOUT):
	// the χ functions of a CALL live on this companion node, inserted
	// immediately after the call by the memory-SSA pass, so that values
	// returning from the callee's FUNEXIT do not merge into the values
	// sent to the callee's FUNENTRY.
	CallRet
)

var opNames = [...]string{
	BadOp:    "bad",
	Alloc:    "alloc",
	Copy:     "copy",
	Phi:      "phi",
	Field:    "field",
	Load:     "load",
	Store:    "store",
	Call:     "call",
	FunEntry: "funentry",
	FunExit:  "funexit",
	MemPhi:   "memphi",
	CallRet:  "callret",
}

func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Pos is a source position. The zero Pos means "unknown": programs
// built from textual IR or synthesised by generators carry no
// positions, and diagnostics fall back to instruction labels.
type Pos struct {
	Line int
	Col  int
}

// IsKnown reports whether the position carries real source coordinates.
func (p Pos) IsKnown() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsKnown() {
		return "?"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Instr is a single instruction, identified program-wide by Label (the ℓ
// of the paper) once Program.Finalize has run.
type Instr struct {
	Label uint32 // dense program-wide instruction label; assigned by Finalize
	Op    Op

	// Pos is the source position the instruction was lowered from, or the
	// zero Pos when the program has no source-level provenance.
	Pos Pos

	// Def is the defined top-level pointer (Alloc, Copy, Phi, Field, Load,
	// Call with a result) or None.
	Def ID

	// Uses are the used top-level pointers:
	//   Copy:  [src]
	//   Phi:   [incoming...] (parallel to block preds, but treated as a set)
	//   Field: [base]
	//   Load:  [addr]
	//   Store: [addr, val]
	//   Call:  direct   → [args...]
	//          indirect → [fptr, args...]
	//   FunExit: [retval] or nil
	Uses []ID

	// Obj is the allocated object for Alloc, or the object selected by a
	// MemPhi.
	Obj ID

	// Off is the field offset for Field.
	Off int

	// Callee is the direct call target; nil means the call is indirect
	// through Uses[0].
	Callee *Function

	// CallSite links a CallRet back to its CALL instruction.
	CallSite *Instr

	Block  *Block
	Parent *Function
}

// IsIndirectCall reports whether i is a call through a function pointer.
func (i *Instr) IsIndirectCall() bool { return i.Op == Call && i.Callee == nil }

// CallArgs returns the argument operands of a Call.
func (i *Instr) CallArgs() []ID {
	if i.Op != Call {
		return nil
	}
	if i.Callee != nil {
		return i.Uses
	}
	return i.Uses[1:]
}

// CalleePtr returns the function-pointer operand of an indirect Call.
func (i *Instr) CalleePtr() ID {
	if i.IsIndirectCall() {
		return i.Uses[0]
	}
	return None
}

// format renders the instruction using a name lookup. It is used in
// validator diagnostics, so it must tolerate malformed operand lists.
func (i *Instr) format(name func(ID) string) string {
	var b strings.Builder
	use := func(k int) string {
		if k < len(i.Uses) {
			return name(i.Uses[k])
		}
		return "<missing>"
	}
	switch i.Op {
	case Alloc:
		fmt.Fprintf(&b, "%s = alloc %s", name(i.Def), name(i.Obj))
	case Copy:
		fmt.Fprintf(&b, "%s = copy %s", name(i.Def), use(0))
	case Phi:
		fmt.Fprintf(&b, "%s = phi(%s)", name(i.Def), joinNames(i.Uses, name))
	case Field:
		fmt.Fprintf(&b, "%s = field %s, %d", name(i.Def), use(0), i.Off)
	case Load:
		fmt.Fprintf(&b, "%s = load %s", name(i.Def), use(0))
	case Store:
		fmt.Fprintf(&b, "store %s, %s", use(0), use(1))
	case Call:
		if i.Def != None {
			fmt.Fprintf(&b, "%s = ", name(i.Def))
		}
		if i.Callee != nil {
			fmt.Fprintf(&b, "call %s(%s)", i.Callee.Name, joinNames(i.Uses, name))
		} else if len(i.Uses) > 0 {
			fmt.Fprintf(&b, "calli %s(%s)", use(0), joinNames(i.Uses[1:], name))
		} else {
			b.WriteString("calli <missing>()")
		}
	case FunEntry:
		fmt.Fprintf(&b, "funentry(%s)", joinNames(i.Uses, name))
	case FunExit:
		if len(i.Uses) > 0 {
			fmt.Fprintf(&b, "funexit %s", name(i.Uses[0]))
		} else {
			b.WriteString("funexit")
		}
	case MemPhi:
		fmt.Fprintf(&b, "%s = memphi", name(i.Obj))
	case CallRet:
		b.WriteString("callret")
	default:
		fmt.Fprintf(&b, "bad op %d", i.Op)
	}
	return b.String()
}

func joinNames(ids []ID, name func(ID) string) string {
	parts := make([]string, len(ids))
	for k, id := range ids {
		parts[k] = name(id)
	}
	return strings.Join(parts, ", ")
}
