package ir

import (
	"strings"
	"testing"
)

// buildFig1 constructs the paper's Figure 1 program:
//
//	p = &a; x = &b; *p = x; y = *p; q = alloca; *q = y
//
// (shape only; exact temporaries differ).
func buildFig1(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()
	f := p.NewFunction("main", 0)
	b := f.Entry
	a := p.NewObject("a", StackObj, 0, f)
	bb := p.NewObject("b", StackObj, 0, f)
	h := p.NewObject("h", HeapObj, 0, f)
	vp := p.NewPointer("p")
	vx := p.NewPointer("x")
	vy := p.NewPointer("y")
	vq := p.NewPointer("q")
	f.EmitAlloc(b, vp, a)
	f.EmitAlloc(b, vx, bb)
	f.EmitStore(b, vp, vx)
	f.EmitLoad(b, vy, vp)
	f.EmitAlloc(b, vq, h)
	f.EmitStore(b, vq, vy)
	f.Exit = b
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return p
}

func TestBuildAndFinalize(t *testing.T) {
	p := buildFig1(t)
	if got := len(p.Instrs); got != 1+8 { // nil slot + 6 emitted + entry + exit
		t.Errorf("len(Instrs) = %d, want 9", got)
	}
	// Labels dense, back-pointers consistent.
	for l, in := range p.Instrs {
		if l == 0 {
			if in != nil {
				t.Error("label 0 not reserved")
			}
			continue
		}
		if int(in.Label) != l {
			t.Errorf("instr at slot %d has label %d", l, in.Label)
		}
		if in.Parent == nil || in.Block == nil {
			t.Errorf("instr %d missing parent/block", l)
		}
	}
	f := p.FuncByName("main")
	if f.EntryInstr.Op != FunEntry || f.ExitInstr.Op != FunExit {
		t.Error("entry/exit pseudo-instructions wrong")
	}
	if f.Entry.Instrs[0] != f.EntryInstr {
		t.Error("FunEntry not first instruction of entry block")
	}
}

func TestFinalizeTwiceFails(t *testing.T) {
	p := buildFig1(t)
	if err := p.Finalize(); err == nil {
		t.Error("second Finalize did not fail")
	}
}

func TestPartialSSAViolation(t *testing.T) {
	p := NewProgram()
	f := p.NewFunction("f", 0)
	o := p.NewObject("o", StackObj, 0, f)
	v := p.NewPointer("v")
	f.EmitAlloc(f.Entry, v, o)
	f.EmitAlloc(f.Entry, v, o) // second def of v
	f.Exit = f.Entry
	if err := p.Finalize(); err == nil || !strings.Contains(err.Error(), "partial SSA") {
		t.Errorf("Finalize error = %v, want partial SSA violation", err)
	}
}

func TestValidateRejectsObjectOperand(t *testing.T) {
	p := NewProgram()
	f := p.NewFunction("f", 0)
	o := p.NewObject("o", StackObj, 0, f)
	v := p.NewPointer("v")
	f.EmitCopy(f.Entry, v, o) // object used as pointer operand
	f.Exit = f.Entry
	if err := p.Finalize(); err == nil || !strings.Contains(err.Error(), "not a top-level pointer") {
		t.Errorf("Finalize error = %v", err)
	}
}

func TestValidateRejectsBadAlloc(t *testing.T) {
	p := NewProgram()
	f := p.NewFunction("f", 0)
	v := p.NewPointer("v")
	w := p.NewPointer("w")
	f.append(f.Entry, &Instr{Op: Alloc, Def: v, Obj: w}) // alloc of a pointer
	f.Exit = f.Entry
	if err := p.Finalize(); err == nil || !strings.Contains(err.Error(), "non-object") {
		t.Errorf("Finalize error = %v", err)
	}
}

func TestFieldObj(t *testing.T) {
	p := NewProgram()
	f := p.NewFunction("f", 0)
	s := p.NewObject("s", StackObj, 3, f)

	f1 := p.FieldObj(s, 1)
	if f1 == s {
		t.Fatal("field object equals base")
	}
	if again := p.FieldObj(s, 1); again != f1 {
		t.Error("FieldObj not memoised")
	}
	v := p.Value(f1)
	if !v.IsField() || v.Base != s || v.Offset != 1 {
		t.Errorf("field object metadata wrong: %+v", v)
	}

	// Field of field accumulates from the base: (s.f1).f1 = s.f2.
	f2 := p.FieldObj(f1, 1)
	if p.Value(f2).Offset != 2 {
		t.Errorf("nested field offset = %d, want 2", p.Value(f2).Offset)
	}

	// Clamping: offset past the end collapses to the last field.
	fLast := p.FieldObj(s, 99)
	if p.Value(fLast).Offset != 2 {
		t.Errorf("clamped offset = %d, want 2", p.Value(fLast).Offset)
	}

	// Offset 0 is the base itself.
	if p.FieldObj(s, 0) != s {
		t.Error("FieldObj(s, 0) != s")
	}

	// Scalars have no fields.
	sc := p.NewObject("sc", StackObj, 0, f)
	if p.FieldObj(sc, 2) != sc {
		t.Error("field of scalar did not collapse to base")
	}
}

func TestFuncObjMarksAddressTaken(t *testing.T) {
	p := NewProgram()
	callee := p.NewFunction("callee", 1)
	if callee.AddressTaken {
		t.Fatal("fresh function already address-taken")
	}
	o1 := p.FuncObj(callee)
	o2 := p.FuncObj(callee)
	if o1 != o2 {
		t.Error("FuncObj not memoised")
	}
	if !callee.AddressTaken {
		t.Error("FuncObj did not mark function address-taken")
	}
	if v := p.Value(o1); v.ObjKind != FuncObj || v.Func != callee {
		t.Errorf("func object metadata wrong: %+v", v)
	}
}

func TestGlobals(t *testing.T) {
	p := NewProgram()
	g, gobj := p.NewGlobal("g", 2)
	if !p.IsPointer(g) || !p.IsObject(gobj) {
		t.Fatal("global kinds wrong")
	}
	if p.Value(gobj).ObjKind != GlobalObj {
		t.Error("global object kind wrong")
	}
	gf := p.GlobalsFunc()
	if gf == nil {
		t.Fatal("no globals function")
	}
	found := false
	gf.ForEachInstr(func(in *Instr) {
		if in.Op == Alloc && in.Def == g && in.Obj == gobj {
			found = true
		}
	})
	if !found {
		t.Error("no ALLOC for global in __globals__")
	}
}

func TestCallHelpers(t *testing.T) {
	p := NewProgram()
	callee := p.NewFunction("callee", 2)
	f := p.NewFunction("f", 0)
	a := p.NewPointer("a")
	bp := p.NewPointer("b")
	o := p.NewObject("o", StackObj, 0, f)
	f.EmitAlloc(f.Entry, a, o)
	f.EmitCopy(f.Entry, bp, a)
	r1 := p.NewPointer("r1")
	direct := f.EmitCall(f.Entry, r1, callee, a, bp)
	fp := p.NewPointer("fp")
	f.EmitAlloc(f.Entry, fp, p.FuncObj(callee))
	r2 := p.NewPointer("r2")
	indirect := f.EmitCallIndirect(f.Entry, r2, fp, a)

	if direct.IsIndirectCall() {
		t.Error("direct call classified indirect")
	}
	if !indirect.IsIndirectCall() {
		t.Error("indirect call classified direct")
	}
	if got := direct.CallArgs(); len(got) != 2 || got[0] != a || got[1] != bp {
		t.Errorf("direct CallArgs = %v", got)
	}
	if got := indirect.CallArgs(); len(got) != 1 || got[0] != a {
		t.Errorf("indirect CallArgs = %v", got)
	}
	if indirect.CalleePtr() != fp {
		t.Error("CalleePtr wrong")
	}
	if direct.CalleePtr() != None {
		t.Error("CalleePtr of direct call not None")
	}
}

func TestBlocksAndCFG(t *testing.T) {
	p := NewProgram()
	f := p.NewFunction("f", 0)
	b1 := f.Entry
	b2 := f.NewBlock("then")
	b3 := f.NewBlock("join")
	b1.AddSucc(b2)
	b1.AddSucc(b3)
	b1.AddSucc(b2) // dup
	b2.AddSucc(b3)
	if len(b1.Succs) != 2 {
		t.Errorf("dup succ not deduplicated: %v", b1.Succs)
	}
	if len(b3.Preds) != 2 {
		t.Errorf("preds of join = %d, want 2", len(b3.Preds))
	}
	f.Exit = b3
	if err := p.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if f.ExitInstr.Block != b3 {
		t.Error("FunExit not in designated exit block")
	}
}

func TestStringContainsInstrs(t *testing.T) {
	p := buildFig1(t)
	s := p.String()
	for _, want := range []string{"func main()", "p = alloc a 0", "store p, x", "y = load p", "alloc.heap h 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
