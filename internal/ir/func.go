package ir

import "fmt"

// Block is a basic block: a label, an ordered instruction list, and CFG
// edges. Terminators are implicit — a block falls through to its Succs;
// points-to analysis does not care about branch conditions, so branches
// are nondeterministic.
type Block struct {
	Name   string
	Index  int // position within the function
	Instrs []*Instr
	Succs  []*Block
	Preds  []*Block
	Parent *Function
}

// AddSucc links b → s in the CFG (deduplicated).
func (b *Block) AddSucc(s *Block) {
	for _, t := range b.Succs {
		if t == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

func (b *Block) String() string { return b.Name }

// Function is one procedure: parameters (top-level pointers), basic
// blocks, and the FUNENTRY/FUNEXIT pseudo-instructions. Entry is always
// Blocks[0]; Entry's first instruction is the FunEntry and the exit
// block's last instruction is the FunExit (LLVM's UnifyFunctionExitNodes
// is modelled by construction: the builder maintains a single exit).
type Function struct {
	Name   string
	Params []ID
	Blocks []*Block

	Entry *Block
	Exit  *Block

	EntryInstr *Instr
	ExitInstr  *Instr

	// Ret is the returned top-level pointer, or None.
	Ret ID

	// AddressTaken is set by Finalize when the function's address is taken
	// (a FuncObj exists for it), i.e. it may be an indirect-call target.
	AddressTaken bool

	Parent *Program
}

func (f *Function) String() string { return f.Name }

// NewBlock appends a new basic block to f.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{Name: name, Index: len(f.Blocks), Parent: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// append adds an instruction to a block, wiring back-references.
func (f *Function) append(b *Block, in *Instr) *Instr {
	in.Block = b
	in.Parent = f
	b.Instrs = append(b.Instrs, in)
	return in
}

// Instruction constructors. They perform no validation beyond shape;
// Program.Finalize validates the whole module.

// EmitAlloc appends p = alloc obj to block b.
func (f *Function) EmitAlloc(b *Block, p, obj ID) *Instr {
	return f.append(b, &Instr{Op: Alloc, Def: p, Obj: obj})
}

// EmitCopy appends p = copy q to block b.
func (f *Function) EmitCopy(b *Block, p, q ID) *Instr {
	return f.append(b, &Instr{Op: Copy, Def: p, Uses: []ID{q}})
}

// EmitPhi appends p = phi(qs...) to block b.
func (f *Function) EmitPhi(b *Block, p ID, qs ...ID) *Instr {
	return f.append(b, &Instr{Op: Phi, Def: p, Uses: qs})
}

// EmitField appends p = field q, off to block b.
func (f *Function) EmitField(b *Block, p, q ID, off int) *Instr {
	return f.append(b, &Instr{Op: Field, Def: p, Uses: []ID{q}, Off: off})
}

// EmitLoad appends p = load q to block b.
func (f *Function) EmitLoad(b *Block, p, q ID) *Instr {
	return f.append(b, &Instr{Op: Load, Def: p, Uses: []ID{q}})
}

// EmitStore appends store p, q (i.e. *p = q) to block b.
func (f *Function) EmitStore(b *Block, p, q ID) *Instr {
	return f.append(b, &Instr{Op: Store, Uses: []ID{p, q}})
}

// EmitCall appends a direct call p = callee(args...). Pass p = None to
// discard the result.
func (f *Function) EmitCall(b *Block, p ID, callee *Function, args ...ID) *Instr {
	return f.append(b, &Instr{Op: Call, Def: p, Callee: callee, Uses: args})
}

// EmitCallIndirect appends an indirect call p = (*fp)(args...).
func (f *Function) EmitCallIndirect(b *Block, p, fp ID, args ...ID) *Instr {
	uses := append([]ID{fp}, args...)
	return f.append(b, &Instr{Op: Call, Def: p, Uses: uses})
}

// setEntryExit installs the FunEntry/FunExit pseudo-instructions. Called
// by Program.NewFunction and by Finalize once Ret is known.
func (f *Function) setEntryExit() {
	if f.Entry == nil {
		f.Entry = f.NewBlock("entry")
	}
	if f.EntryInstr == nil {
		f.EntryInstr = &Instr{Op: FunEntry, Uses: f.Params, Block: f.Entry, Parent: f}
		f.Entry.Instrs = append([]*Instr{f.EntryInstr}, f.Entry.Instrs...)
	}
}

// finishExit creates the single exit block/instruction. Ret may be None.
func (f *Function) finishExit() error {
	if f.ExitInstr != nil {
		return nil
	}
	if f.Exit == nil {
		return fmt.Errorf("function %s: no exit block", f.Name)
	}
	var uses []ID
	if f.Ret != None {
		uses = []ID{f.Ret}
	}
	f.ExitInstr = f.append(f.Exit, &Instr{Op: FunExit, Uses: uses})
	return nil
}

// ForEachInstr visits every instruction of f in block order.
func (f *Function) ForEachInstr(visit func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			visit(in)
		}
	}
}
