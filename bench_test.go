// Benchmarks regenerating the paper's evaluation, one family per table
// or figure. The full 15-benchmark tables (exact rows, geometric means,
// OOM marking) are produced by `go run ./cmd/vsfs-bench`; the testing.B
// entries here time the individual analyses on a representative subset
// so `go test -bench=.` stays tractable.
//
//	BenchmarkTable2Build     — Table II pipeline construction (SVFG sizes)
//	BenchmarkTable3Andersen  — Table III column 1
//	BenchmarkTable3SFS       — Table III columns 2–3 (the baseline)
//	BenchmarkTable3VSFS      — Table III columns 4–6 (the contribution)
//	BenchmarkFigure2         — the motivating-example fragment
//	BenchmarkSweepRedundancy — Section V shape claim (speedup vs chains)
//	BenchmarkVersioningOnly  — the pre-analysis in isolation
package vsfs

import (
	"testing"

	"vsfs/internal/andersen"
	"vsfs/internal/bitset"
	"vsfs/internal/core"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/memssa"
	"vsfs/internal/sfs"
	"vsfs/internal/svfg"
	"vsfs/internal/workload"
)

// benchProfiles is the subset of Table II profiles small enough to
// iterate under testing.B.
var benchProfiles = []string{"du", "ninja", "dpkg", "nano", "psql"}

func buildGraph(b *testing.B, name string) *svfg.Graph {
	b.Helper()
	p := workload.ProfileByName(name)
	if p == nil {
		b.Fatalf("no profile %q", name)
	}
	prog := p.Build()
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	return svfg.Build(prog, aux, mssa)
}

func BenchmarkTable2Build(b *testing.B) {
	for _, name := range benchProfiles {
		b.Run(name, func(b *testing.B) {
			p := workload.ProfileByName(name)
			for i := 0; i < b.N; i++ {
				prog := p.Build()
				aux := andersen.Analyze(prog)
				mssa := memssa.Build(prog, aux)
				g := svfg.Build(prog, aux, mssa)
				if g.NumNodes == 0 {
					b.Fatal("empty SVFG")
				}
			}
		})
	}
}

func BenchmarkTable3Andersen(b *testing.B) {
	for _, name := range benchProfiles {
		b.Run(name, func(b *testing.B) {
			p := workload.ProfileByName(name)
			progs := make([]*ir.Program, b.N)
			for i := range progs {
				progs[i] = p.Build()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				andersen.Analyze(progs[i])
			}
		})
	}
}

func BenchmarkTable3SFS(b *testing.B) {
	for _, name := range benchProfiles {
		b.Run(name, func(b *testing.B) {
			g := buildGraph(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sfs.Solve(g.Clone())
			}
		})
	}
}

func BenchmarkTable3VSFS(b *testing.B) {
	for _, name := range benchProfiles {
		b.Run(name, func(b *testing.B) {
			g := buildGraph(b, name)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Solve(g.Clone())
			}
		})
	}
}

// BenchmarkVersioningOnly isolates the meld-labelling pre-analysis by
// measuring a solve whose time is dominated by versioning (solving with
// the versioning already warm is not separable through the public API,
// so this compares whole-run VSFS with the versioning stats reported).
func BenchmarkVersioningOnly(b *testing.B) {
	g := buildGraph(b, "nano")
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		r := core.Solve(g.Clone())
		total += r.Stats.Versioning.Duration.Nanoseconds()
	}
	b.ReportMetric(float64(total)/float64(b.N), "versioning-ns/op")
}

func figure2Graph(b *testing.B) *svfg.Graph {
	b.Helper()
	prog, err := irparse.Parse(`
func main() {
entry:
  p = alloc.heap a 0
  q = copy p
  x1 = alloc b1 0
  x2 = alloc b2 0
  store p, x1
  v3 = load p
  store q, x2
  v4 = load p
  v5 = load p
  ret
}
`)
	if err != nil {
		b.Fatal(err)
	}
	aux := andersen.Analyze(prog)
	var l [6]uint32
	var a ir.ID
	stores, loads := 0, 0
	prog.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		switch in.Op {
		case ir.Alloc:
			if prog.Value(in.Obj).Name == "a" {
				a = in.Obj
			}
		case ir.Store:
			stores++
			l[stores] = in.Label
		case ir.Load:
			loads++
			l[2+loads] = in.Label
		}
	})
	n := len(prog.Instrs)
	mssa := &memssa.Result{
		Prog: prog, Aux: aux,
		Mu:        make([]*bitset.Sparse, n),
		Chi:       make([]*bitset.Sparse, n),
		FormalIn:  map[*ir.Function]*bitset.Sparse{},
		FormalOut: map[*ir.Function]*bitset.Sparse{},
		CallRets:  map[*ir.Instr]*ir.Instr{},
	}
	for _, f := range prog.Funcs {
		mssa.FormalIn[f] = bitset.New()
		mssa.FormalOut[f] = bitset.New()
	}
	mssa.Chi[l[1]] = bitset.Of(uint32(a))
	mssa.Chi[l[2]] = bitset.Of(uint32(a))
	for _, ld := range []uint32{l[3], l[4], l[5]} {
		mssa.Mu[ld] = bitset.Of(uint32(a))
	}
	mssa.Edges = []memssa.IndirEdge{
		{From: l[1], To: l[2], Obj: a}, {From: l[1], To: l[3], Obj: a},
		{From: l[1], To: l[4], Obj: a}, {From: l[1], To: l[5], Obj: a},
		{From: l[2], To: l[4], Obj: a}, {From: l[2], To: l[5], Obj: a},
	}
	return svfg.Build(prog, aux, mssa)
}

func BenchmarkFigure2(b *testing.B) {
	g := figure2Graph(b)
	b.Run("sfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := sfs.Solve(g.Clone())
			if r.Stats.PtsSets != 6 {
				b.Fatalf("PtsSets = %d, want 6", r.Stats.PtsSets)
			}
		}
	})
	b.Run("vsfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := core.Solve(g.Clone())
			if r.Stats.PtsSets != 3 {
				b.Fatalf("PtsSets = %d, want 3", r.Stats.PtsSets)
			}
		}
	})
}

// BenchmarkSweepRedundancy regenerates the Section V shape claim: as
// single-object redundancy (pointer-chase density) grows, SFS slows
// down much faster than VSFS.
func BenchmarkSweepRedundancy(b *testing.B) {
	for _, frac := range []float64{0, 0.25, 0.5} {
		// Scale the budget so the non-chain core stays constant while
		// redundant load chains grow (see bench.RunSweep).
		const chainCost = 3
		budget := int(30 * (frac*chainCost + (1 - frac)) / (1 - frac + 1e-9))
		cfg := workload.RandomConfig{
			Funcs: 24, MaxParams: 3, InstrsPerFunc: budget, MaxFields: 3,
			HeapFrac: 0.4, IndirectCalls: true, Globals: 6,
			LoopFrac: 0.12, BranchFrac: 0.28, StoreFrac: 0.4,
			ChainFrac: frac, ChainLen: 5, GlobalBias: 0.2, BuilderFrac: 0.06,
		}
		prog := workload.Random(500, cfg)
		aux := andersen.Analyze(prog)
		mssa := memssa.Build(prog, aux)
		g := svfg.Build(prog, aux, mssa)
		name := func(analysis string) string {
			return analysis + "/chain=" + fmtFrac(frac)
		}
		b.Run(name("sfs"), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sfs.Solve(g.Clone())
			}
		})
		b.Run(name("vsfs"), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Solve(g.Clone())
			}
		})
	}
}

func fmtFrac(f float64) string {
	switch f {
	case 0:
		return "0.00"
	case 0.25:
		return "0.25"
	default:
		return "0.50"
	}
}
