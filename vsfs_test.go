package vsfs

import (
	"reflect"
	"strings"
	"testing"
)

const demoC = `
struct Node { int *data; struct Node *next; };

int g;
int *gp = &g;

struct Node *mk(int *d) {
  struct Node *n;
  n = malloc();
  n->data = d;
  return n;
}

int *get(struct Node *n) {
  return n->data;
}

int main() {
  int a;
  int b;
  struct Node *x;
  struct Node *y;
  x = mk(&a);
  y = mk(&b);
  int *p;
  p = get(x);
  int *q;
  q = gp;
  return 0;
}
`

func TestAnalyzeCAllModes(t *testing.T) {
	for _, mode := range []Mode{VSFS, SFS, FlowInsensitive} {
		t.Run(mode.String(), func(t *testing.T) {
			r, err := AnalyzeC(demoC, Options{Mode: mode})
			if err != nil {
				t.Fatalf("AnalyzeC: %v", err)
			}
			// p comes from a shared malloc site: both &a and &b flow in
			// (context-insensitive).
			got := r.PointsToVar("main", "p")
			want := []string{"main.a", "main.b"}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("PointsToVar(main, p) = %v, want %v", got, want)
			}
			if got := r.PointsToVar("main", "q"); !reflect.DeepEqual(got, []string{"g.obj"}) {
				t.Errorf("PointsToVar(main, q) = %v", got)
			}
			if !r.MayAlias("main", "p", "main", "p") {
				t.Error("p should alias itself")
			}
			if r.MayAlias("main", "p", "main", "q") {
				t.Error("p and q should not alias")
			}
		})
	}
}

func TestVSFSEqualsSFSOnFacade(t *testing.T) {
	rv, err := AnalyzeC(demoC, Options{Mode: VSFS})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := AnalyzeC(demoC, Options{Mode: SFS})
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range rv.Functions() {
		for _, v := range []string{"p", "q", "x", "y", "n"} {
			a := rv.PointsToVar(fn, v)
			b := rs.PointsToVar(fn, v)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s.%s: VSFS %v ≠ SFS %v", fn, v, a, b)
			}
		}
	}
}

func TestCallGraph(t *testing.T) {
	r, err := AnalyzeC(demoC, Options{Mode: VSFS})
	if err != nil {
		t.Fatal(err)
	}
	cg := r.CallGraph()
	if got := cg["main"]; !reflect.DeepEqual(got, []string{"get", "mk"}) {
		t.Errorf("callees of main = %v", got)
	}
	if len(cg["mk"]) != 0 {
		t.Errorf("callees of mk = %v", cg["mk"])
	}
	if _, ok := cg["__cinit__"]; ok {
		t.Error("synthetic function leaked into call graph")
	}
}

func TestAnalyzeIR(t *testing.T) {
	r, err := AnalyzeIR(`
func main() {
entry:
  p = alloc a 0
  q = copy p
  ret
}
`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PointsToVar("main", "q"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("pts(q) = %v", got)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := AnalyzeC("int main() { return x; }", Options{}); err == nil {
		t.Error("bad C accepted")
	}
	if _, err := AnalyzeIR("wibble", Options{}); err == nil {
		t.Error("bad IR accepted")
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{
		"vsfs": VSFS, "": VSFS, "sfs": SFS, "andersen": FlowInsensitive, "FI": FlowInsensitive,
	} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Error("ParseMode(nope) succeeded")
	}
}

func TestStatsAndDump(t *testing.T) {
	r, err := AnalyzeC(demoC, Options{Mode: VSFS})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Mode != "vsfs" || s.SVFGNodes == 0 || s.IndirectEdges == 0 {
		t.Errorf("stats incomplete: %+v", s)
	}
	if s.Prelabels == 0 || s.DistinctVersions <= 1 {
		t.Errorf("versioning stats missing: %+v", s)
	}
	dump := r.Dump()
	for _, want := range []string{"func main:", "g.obj", "→"} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q:\n%s", want, dump)
		}
	}
}

func TestExplain(t *testing.T) {
	r, err := AnalyzeC(demoC, Options{Mode: VSFS})
	if err != nil {
		t.Fatal(err)
	}
	// x is read at the call to get, so its loaded temp has witnesses.
	ws := r.Explain("main", "x")
	if len(ws) == 0 {
		t.Fatal("no witnesses for x")
	}
	joined := strings.Join(ws, "")
	for _, want := range []string{"why may", "allocation"} {
		if !strings.Contains(joined, want) {
			t.Errorf("witnesses missing %q:\n%s", want, joined)
		}
	}
	// Flow-insensitive mode has no witness support.
	fi, err := AnalyzeC(demoC, Options{Mode: FlowInsensitive})
	if err != nil {
		t.Fatal(err)
	}
	if ws := fi.Explain("main", "x"); ws != nil {
		t.Error("FI mode returned witnesses")
	}
}
