// Classic use-after-free: the write on line 7 dereferences a pointer
// whose pointee was freed on line 6. The write on line 5 is clean.
int main() {
  int *p;
  p = malloc();
  *p = 1;
  free(p);
  *p = 2;
  return 0;
}
