// Same defect as use_after_free.c, but the write is annotated with an
// inline suppression, so -check reports nothing for it.
int main() {
  int *p;
  p = malloc();
  free(p);
  *p = 2; // vsfs:ignore(use-after-free)
  return 0;
}
