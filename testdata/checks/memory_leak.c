// Three allocation fates: published to a global (reachable at exit),
// freed before returning, and dropped on the floor in lose() — only
// the last is a leak. Allocations held by main's own locals are live
// at exit and never reported.
int *keep;
void lose() {
  int *tmp;
  tmp = malloc();
}
void tidy() {
  int *t;
  t = malloc();
  free(t);
}
int main() {
  int *a;
  a = malloc();
  keep = a;
  lose();
  tidy();
  return 0;
}
