// The second free on line 6 releases an already-freed allocation.
int main() {
  int *p;
  p = malloc();
  free(p);
  free(p);
  return 0;
}
