// stash() publishes the address of its dying local into a global.
int *cell;
void stash() {
  int a;
  cell = &a;
}
int main() {
  stash();
  return 0;
}
