// Objects allocated in source() are sensitive; d reaches sink()
// unsanitised. Replayed with -taint-source source -taint-sink sink.
int *source() {
  int *s;
  s = malloc();
  return s;
}
void sink(int *x) {}
int main() {
  int *d;
  d = source();
  sink(d);
  return 0;
}
