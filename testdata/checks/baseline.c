// Pre-existing defect recorded in baseline.c.baseline: the use-after-
// free is hidden by the baseline, the double-free is new and reported.
int main() {
  int *p;
  p = malloc();
  free(p);
  *p = 2;
  free(p);
  return 0;
}
