// bad() returns the address of its own stack slot.
int *bad() {
  int local;
  return &local;
}
int main() {
  int *p;
  p = bad();
  return 0;
}
