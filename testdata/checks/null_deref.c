// p is never initialised, so the load on line 5 dereferences a pointer
// with an empty points-to set.
int main() {
  int *p;
  int x;
  x = *p;
  return 0;
}
