GO ?= go

.PHONY: build test race vet lint vsfs-lint lint-schema fmt-check bench bench-baseline bench-gate serve fuzz fuzz-native faults check golden fleet chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

lint: vet
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2024.1.1 ./...
	$(GO) run ./cmd/vsfs-lint ./...

# Run only the in-repo analyzer suite (no network; staticcheck needs
# the proxy, vsfs-lint never does).
vsfs-lint:
	$(GO) run ./cmd/vsfs-lint ./...

# Regenerate the reportcontract golden after deliberately appending
# report/ledger fields (the contract is append-only; see DESIGN.md §15).
lint-schema:
	$(GO) run ./cmd/vsfs-lint -update-schema

# Run the memory-safety checker suite over the corpus (text report).
# vsfs exits 5 when findings are reported, which is the point here.
check:
	@$(GO) build -o /tmp/vsfs-make ./cmd/vsfs
	@for f in testdata/checks/*.c; do \
		echo "== $$f"; /tmp/vsfs-make -check $$f; \
		st=$$?; if [ $$st -ne 0 ] && [ $$st -ne 5 ]; then exit $$st; fi; \
	done

# Regenerate the corpus golden files after a deliberate output change.
golden:
	$(GO) test -run TestChecksCorpus -update .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/server/

# Regenerate the committed bench baseline after a deliberate perf change
# (all 15 profiles, parallel engine included; takes a few minutes).
bench-baseline:
	$(GO) run ./cmd/vsfs-bench -parallel 4 -json > BENCH_BASELINE.json

# The CI regression gate, locally: exits 1 past the thresholds. The
# -parallel 4 run adds the vsfs-parallel rows so the gate covers the
# sharded engine too.
bench-gate:
	$(GO) run ./cmd/vsfs-bench -bench du,nano -parallel 4 -json \
		-compare BENCH_BASELINE.json -threshold 200 -mem-threshold 25 > /dev/null

serve:
	$(GO) run ./cmd/vsfs-serve -addr :8080

fuzz:
	$(GO) run ./cmd/vsfs-fuzz -seeds 500 -minimize

fuzz-native:
	$(GO) test -run NONE -fuzz FuzzSparseLaws -fuzztime 30s ./internal/bitset/
	$(GO) test -run NONE -fuzz FuzzInternerStability -fuzztime 30s ./internal/bitset/

faults:
	$(GO) test -race -run 'Fault|Shed|Degrad|Breaker|Overload' ./...
	$(GO) run ./cmd/vsfs-fuzz -faults -skip-resolve -seeds 50

# The fleet smoke drill: three in-process replicas behind the gateway,
# a seeded chaos plan, one replica killed and restarted mid-corpus —
# zero client-visible failures, bodies byte-identical to direct solves.
fleet:
	$(GO) test -race -run 'TestFleet' -v ./internal/cluster/

# Network chaos battery: connection-indexed fault injection plus every
# gateway resilience path (retries, failover, hedging, eject/readmit).
chaos:
	$(GO) test -race ./internal/cluster/... ./internal/oracle/ -run 'Chaos|Refuse|Reset|Delay|Seeded|Gateway|Fleet'
