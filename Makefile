GO ?= go

.PHONY: build test race vet fmt-check bench serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/server/

serve:
	$(GO) run ./cmd/vsfs-serve -addr :8080
