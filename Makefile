GO ?= go

.PHONY: build test race vet fmt-check bench serve fuzz fuzz-native faults

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/server/

serve:
	$(GO) run ./cmd/vsfs-serve -addr :8080

fuzz:
	$(GO) run ./cmd/vsfs-fuzz -seeds 500 -minimize

fuzz-native:
	$(GO) test -run NONE -fuzz FuzzSparseLaws -fuzztime 30s ./internal/bitset/
	$(GO) test -run NONE -fuzz FuzzInternerStability -fuzztime 30s ./internal/bitset/

faults:
	$(GO) test -race -run 'Fault|Shed|Degrad|Breaker|Overload' ./...
	$(GO) run ./cmd/vsfs-fuzz -faults -skip-resolve -seeds 50
