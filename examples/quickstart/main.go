// Quickstart: compile a mini-C program, run the versioned flow-sensitive
// analysis (VSFS), and ask points-to and alias queries through the
// public façade.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"vsfs"
)

const src = `
struct Buf { int *data; struct Buf *next; };

int g;
int *shared = &g;

struct Buf *push(struct Buf *head, int *d) {
  struct Buf *b;
  b = malloc();
  b->data = d;
  b->next = head;
  return b;
}

int main() {
  int x;
  int y;
  struct Buf *list;
  list = null;
  list = push(list, &x);
  list = push(list, &y);
  int *front;
  front = list->data;
  int *other;
  other = shared;
  return 0;
}
`

func main() {
	result, err := vsfs.AnalyzeC(src, vsfs.Options{Mode: vsfs.VSFS})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== points-to queries ==")
	for _, v := range []string{"front", "other", "list"} {
		fmt.Printf("  main.%s may point to: {%s}\n",
			v, strings.Join(result.PointsToVar("main", v), ", "))
	}

	fmt.Println("\n== alias queries ==")
	pairs := [][2]string{{"front", "other"}, {"front", "list"}, {"other", "shared"}}
	for _, p := range pairs {
		fmt.Printf("  mayAlias(%s, %s) = %v\n", p[0], p[1],
			result.MayAlias("main", p[0], "main", p[1]))
	}

	fmt.Println("\n== call graph ==")
	for fn, callees := range result.CallGraph() {
		if len(callees) > 0 {
			fmt.Printf("  %s → %s\n", fn, strings.Join(callees, ", "))
		}
	}

	s := result.Stats()
	fmt.Printf("\n== analysis ==\n  mode=%s SVFG nodes=%d indirect edges=%d\n",
		s.Mode, s.SVFGNodes, s.IndirectEdges)
	fmt.Printf("  versioning: %d prelabels → %d distinct versions\n",
		s.Prelabels, s.DistinctVersions)
}
