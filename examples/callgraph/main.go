// Call-graph client: resolves indirect calls with the flow-insensitive
// auxiliary analysis and with VSFS, showing the flow-sensitive call
// graph is strictly smaller when a function-pointer slot is overwritten
// before the call (a strong update the flow-insensitive analysis cannot
// perform).
//
//	go run ./examples/callgraph
package main

import (
	"fmt"
	"log"
	"strings"

	"vsfs/internal/andersen"
	"vsfs/internal/core"
	"vsfs/internal/ir"
	"vsfs/internal/lang"
	"vsfs/internal/memssa"
	"vsfs/internal/svfg"
)

const src = `
int x;
int y;

int *getX() { return &x; }
int *getY() { return &y; }

int main() {
  int *(*handler)();
  handler = getX;      // dead assignment: overwritten below
  handler = getY;      // flow-sensitively, only getY survives
  int *v;
  v = handler();
  return 0;
}
`

func main() {
	prog, err := lang.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)
	fs := core.Solve(g)

	var calls []*ir.Instr
	for _, f := range prog.Funcs {
		f.ForEachInstr(func(in *ir.Instr) {
			if in.IsIndirectCall() {
				calls = append(calls, in)
			}
		})
	}
	if len(calls) != 1 {
		log.Fatalf("expected 1 indirect call, found %d", len(calls))
	}
	call := calls[0]

	fiNames := funcNames(aux.CalleesOf(call))
	fsNames := funcNames(fs.CalleesOf(call))
	fmt.Println("indirect call through 'handler':")
	fmt.Printf("  flow-insensitive (Andersen) callees: %s\n", strings.Join(fiNames, ", "))
	fmt.Printf("  flow-sensitive   (VSFS)     callees: %s\n", strings.Join(fsNames, ", "))
	fmt.Println()
	if len(fsNames) < len(fiNames) {
		fmt.Printf("flow-sensitivity pruned %d spurious call edge(s): the store\n", len(fiNames)-len(fsNames))
		fmt.Println("'handler = getY' strongly updates the singleton pointer slot,")
		fmt.Println("killing the dead 'handler = getX' binding.")
	}
	if len(fsNames) != 1 || fsNames[0] != "getY" {
		log.Fatalf("expected VSFS to resolve exactly getY, got %v", fsNames)
	}
}

func funcNames(fs []*ir.Function) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}
