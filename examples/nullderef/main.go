// Bug-finding clients: the internal/checker package consumes any
// solver's points-to facts. This example runs its three checkers over a
// buggy program with the flow-sensitive results and contrasts the
// null-dereference answer with the flow-insensitive one, which misses a
// bug only flow-sensitivity can see (the pointer is nulled *after*
// acquiring a valid target).
//
//	go run ./examples/nullderef
package main

import (
	"fmt"
	"log"

	"vsfs/internal/andersen"
	"vsfs/internal/checker"
	"vsfs/internal/core"
	"vsfs/internal/lang"
	"vsfs/internal/memssa"
	"vsfs/internal/svfg"
)

const src = `
int *leaked;

int *dangling() {
  int local;
  return &local;       // BUG: pointer into a dead frame
}

int escape() {
  int temp;
  leaked = &temp;      // BUG: local address outlives the frame
  return 0;
}

int main() {
  int a;
  int *pa;
  pa = &a;

  int **ok;
  ok = &pa;
  *ok = &a;            // fine

  int **bug;
  bug = &pa;
  bug = null;          // strong update clears the singleton slot
  *bug = &a;           // BUG: bug is null here

  int *d;
  d = dangling();
  escape();
  return 0;
}
`

func main() {
	prog, err := lang.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	aux := andersen.Analyze(prog)
	mssa := memssa.Build(prog, aux)
	g := svfg.Build(prog, aux, mssa)
	fs := core.Solve(g)

	fmt.Println("flow-sensitive findings:")
	var all []checker.Finding
	all = append(all, checker.NullDerefs(prog, fs)...)
	all = append(all, checker.DanglingReturns(prog, fs)...)
	all = append(all, checker.StackEscapes(prog, fs)...)
	for _, f := range all {
		fmt.Printf("  %s\n", f)
	}

	fiNull := checker.NullDerefs(prog, aux)
	fmt.Printf("\nflow-insensitive (Andersen) null-deref findings: %d\n", len(fiNull))
	fmt.Println("the nulled-pointer store is invisible without flow-sensitivity:")
	fmt.Println("Andersen still believes 'bug' points at 'pa' somewhere in the program.")

	if len(all) != 3 {
		log.Fatalf("expected 3 flow-sensitive findings, got %d", len(all))
	}
}
