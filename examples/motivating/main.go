// Motivating example: reconstructs the paper's Figure 2 — an SVFG
// fragment with two stores and three loads of one object — and shows
// exactly the numbers from the paper: SFS maintains 6 points-to sets and
// 6 propagation constraints for the object; VSFS maintains 3 and 2 while
// computing identical results.
//
//	go run ./examples/motivating
package main

import (
	"fmt"

	"vsfs/internal/andersen"
	"vsfs/internal/bitset"
	"vsfs/internal/core"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/memssa"
	"vsfs/internal/sfs"
	"vsfs/internal/svfg"
)

func main() {
	// The instruction carrier: two stores to object a (through p and its
	// copy q) and three loads. The heap kind makes updates weak, as in
	// the figure.
	prog := irparse.MustParse(`
func main() {
entry:
  p = alloc.heap a 0
  q = copy p
  x1 = alloc b1 0
  x2 = alloc b2 0
  store p, x1
  v3 = load p
  store q, x2
  v4 = load p
  v5 = load p
  ret
}
`)
	aux := andersen.Analyze(prog)

	// Collect ℓ1..ℓ5 and the object a.
	var l [6]uint32
	var a ir.ID
	stores, loads := 0, 0
	prog.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		switch in.Op {
		case ir.Alloc:
			if prog.Value(in.Obj).Name == "a" {
				a = in.Obj
			}
		case ir.Store:
			stores++
			l[stores] = in.Label
		case ir.Load:
			loads++
			l[2+loads] = in.Label
		}
	})

	// Pin Figure 2's exact indirect edges (the paper extracted this
	// fragment from GNU coreutils' true).
	n := len(prog.Instrs)
	mssa := &memssa.Result{
		Prog: prog, Aux: aux,
		Mu:        make([]*bitset.Sparse, n),
		Chi:       make([]*bitset.Sparse, n),
		FormalIn:  map[*ir.Function]*bitset.Sparse{},
		FormalOut: map[*ir.Function]*bitset.Sparse{},
		CallRets:  map[*ir.Instr]*ir.Instr{},
	}
	for _, f := range prog.Funcs {
		mssa.FormalIn[f] = bitset.New()
		mssa.FormalOut[f] = bitset.New()
	}
	mssa.Chi[l[1]] = bitset.Of(uint32(a))
	mssa.Chi[l[2]] = bitset.Of(uint32(a))
	for _, ld := range []uint32{l[3], l[4], l[5]} {
		mssa.Mu[ld] = bitset.Of(uint32(a))
	}
	mssa.Edges = []memssa.IndirEdge{
		{From: l[1], To: l[2], Obj: a},
		{From: l[1], To: l[3], Obj: a},
		{From: l[1], To: l[4], Obj: a},
		{From: l[1], To: l[5], Obj: a},
		{From: l[2], To: l[4], Obj: a},
		{From: l[2], To: l[5], Obj: a},
	}
	g := svfg.Build(prog, aux, mssa)

	fmt.Println("Figure 2 fragment: ℓ1,ℓ2 store to o; ℓ3,ℓ4,ℓ5 load o")
	fmt.Println("edges: ℓ1→{ℓ2,ℓ3,ℓ4,ℓ5}, ℓ2→{ℓ4,ℓ5}")
	fmt.Println()

	sfsRes := sfs.Solve(g.Clone())
	vsfsRes := core.Solve(g.Clone())

	name := func(v ir.ID) string { return prog.NameOf(v) }
	fmt.Println("== identical results ==")
	for i, v := range []string{"v3", "v4", "v5"} {
		id := varByName(prog, v)
		fmt.Printf("  pt(ℓ%d def %s): SFS %v  VSFS %v\n",
			3+i, name(id), sfsRes.PointsTo(id), vsfsRes.PointsTo(id))
	}

	fmt.Println("\n== versions (Figure 9) ==")
	fmt.Printf("  ηℓ1(o) = κ%d   (prelabel)\n", vsfsRes.YieldVersion(l[1], a))
	fmt.Printf("  ηℓ2(o) = κ%d   (prelabel)\n", vsfsRes.YieldVersion(l[2], a))
	fmt.Printf("  ξℓ2(o) = κ%d = ξℓ3(o) = κ%d = ηℓ1(o)\n",
		vsfsRes.ConsumeVersion(l[2], a), vsfsRes.ConsumeVersion(l[3], a))
	fmt.Printf("  ξℓ4(o) = κ%d = ξℓ5(o) = κ%d   (κ1 ⊙ κ2)\n",
		vsfsRes.ConsumeVersion(l[4], a), vsfsRes.ConsumeVersion(l[5], a))

	fmt.Println("\n== the paper's headline numbers ==")
	fmt.Printf("  SFS : %d points-to sets for o, %d propagation constraints\n",
		sfsRes.Stats.PtsSets, g.NumIndirectEdges)
	fmt.Printf("  VSFS: %d points-to sets for o, %d propagation constraints\n",
		vsfsRes.Stats.PtsSets, vsfsRes.Stats.VersionConstraints)
}

func varByName(prog *ir.Program, name string) ir.ID {
	for id := ir.ID(1); int(id) < prog.NumValues(); id++ {
		if prog.IsPointer(id) && prog.Value(id).Name == name {
			return id
		}
	}
	panic("no variable " + name)
}
