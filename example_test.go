package vsfs_test

import (
	"fmt"
	"log"

	"vsfs"
)

// ExampleAnalyzeC runs the versioned flow-sensitive analysis over a
// small C program and queries what a pointer may reference.
func ExampleAnalyzeC() {
	src := `
int g;
int *gp = &g;

int main() {
  int a;
  int *p;
  p = &a;
  p = gp;
  int *q;
  q = p;
  return 0;
}
`
	result, err := vsfs.AnalyzeC(src, vsfs.Options{Mode: vsfs.VSFS})
	if err != nil {
		log.Fatal(err)
	}
	// p was strongly updated to gp's value before the read.
	fmt.Println(result.PointsToVar("main", "q"))
	// Output: [g.obj]
}

// ExampleResult_MayAlias shows alias queries.
func ExampleResult_MayAlias() {
	src := `
int main() {
  int a;
  int b;
  int *p;
  int *q;
  p = &a;
  q = &b;
  int *r;
  r = p;
  return 0;
}
`
	result, err := vsfs.AnalyzeC(src, vsfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(result.MayAlias("main", "p", "main", "q"))
	fmt.Println(result.MayAlias("main", "p", "main", "r"))
	// Output:
	// false
	// true
}

// ExampleResult_CallGraph resolves an indirect call flow-sensitively.
func ExampleResult_CallGraph() {
	src := `
int *fa() { int *r; r = malloc(); return r; }
int *fb() { int *r; r = malloc(); return r; }

int main() {
  int *(*fp)();
  fp = fa;
  fp = fb;
  int *v;
  v = fp();
  return 0;
}
`
	result, err := vsfs.AnalyzeC(src, vsfs.Options{Mode: vsfs.VSFS})
	if err != nil {
		log.Fatal(err)
	}
	// The singleton function-pointer slot was strongly updated: only fb
	// remains callable.
	fmt.Println(result.CallGraph()["main"])
	// Output: [fb]
}

// ExampleAnalyzeIR analyses the textual IR directly.
func ExampleAnalyzeIR() {
	src := `
func main() {
entry:
  p = alloc obj 0
  q = copy p
  ret
}
`
	result, err := vsfs.AnalyzeIR(src, vsfs.Options{Mode: vsfs.SFS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(result.PointsToVar("main", "q"))
	// Output: [obj]
}
