// Package vsfs is the public façade of this repository: a flow-sensitive
// pointer-analysis library implementing "Object Versioning for
// Flow-Sensitive Pointer Analysis" (Barbar, Sui, Chen — CGO 2021) and
// everything it stands on, in pure Go.
//
// The pipeline is:
//
//	mini-C or textual IR
//	  → partial-SSA IR                  (internal/lang, internal/irparse, internal/ir)
//	  → Andersen's auxiliary analysis   (internal/andersen)
//	  → memory SSA (χ/μ, MEMPHI)        (internal/memssa)
//	  → sparse value-flow graph         (internal/svfg)
//	  → SFS or VSFS main phase          (internal/sfs, internal/core)
//
// VSFS (the paper's contribution, internal/core) produces bit-for-bit
// the same points-to results as SFS while storing one global points-to
// set per (object, version) instead of per-node IN/OUT maps.
//
// A third backend, internal/cfgfree, branches off after the auxiliary
// phase: an Andersen-style flow-sensitive solver that consumes the
// partial-SSA IR directly, with no memory SSA or SVFG construction. It
// is less precise than SFS/VSFS but strictly more precise than
// Andersen (sfs ⊆ cfgfree ⊆ andersen pointwise), which also makes it
// the intermediate rung of the degradation ladder: a VSFS/SFS run that
// exhausts its budget retries on the CFG-free backend before giving up
// flow-sensitivity entirely.
//
// This façade exposes string-keyed queries so quick clients need no
// knowledge of the IR. Heavier clients inside this module import the
// internal packages directly (see examples/ and cmd/).
package vsfs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"vsfs/internal/andersen"
	"vsfs/internal/bitset"
	"vsfs/internal/cfgfree"
	"vsfs/internal/core"
	"vsfs/internal/guard"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/lang"
	"vsfs/internal/memssa"
	"vsfs/internal/obs"
	"vsfs/internal/sfs"
	"vsfs/internal/shape"
	"vsfs/internal/svfg"
)

// Mode selects the main-phase analysis.
type Mode int

const (
	// VSFS is the paper's versioned staged flow-sensitive analysis
	// (default).
	VSFS Mode = iota
	// SFS is the staged flow-sensitive baseline.
	SFS
	// FlowInsensitive answers queries from Andersen's analysis alone.
	FlowInsensitive
	// CFGFree is the CFG-free Andersen-style flow-sensitive backend
	// (internal/cfgfree): flow-sensitive precision on straight-line
	// store/load sequences with no memory-SSA or SVFG construction.
	CFGFree
)

func (m Mode) String() string {
	switch m {
	case VSFS:
		return "vsfs"
	case SFS:
		return "sfs"
	case FlowInsensitive:
		return "andersen"
	case CFGFree:
		return "cfgfree"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode maps a CLI string to a Mode.
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "vsfs", "":
		return VSFS, nil
	case "sfs":
		return SFS, nil
	case "andersen", "ander", "fi":
		return FlowInsensitive, nil
	case "cfgfree", "cfg-free", "cf":
		return CFGFree, nil
	}
	return 0, fmt.Errorf("unknown analysis mode %q (want vsfs, sfs, cfgfree, or andersen)", s)
}

// Input selects the source language accepted by AnalyzeContext.
type Input int

const (
	// InputC is mini-C source (default).
	InputC Input = iota
	// InputIR is the textual IR format of internal/irparse.
	InputIR
)

func (i Input) String() string {
	if i == InputIR {
		return "ir"
	}
	return "c"
}

// ParseInput maps a CLI/API string to an Input.
func ParseInput(s string) (Input, error) {
	switch strings.ToLower(s) {
	case "c", "minic", "mini-c", "":
		return InputC, nil
	case "ir", "vir":
		return InputIR, nil
	}
	return 0, fmt.Errorf("unknown input language %q (want c or ir)", s)
}

// Options configures Analyze.
type Options struct {
	Mode Mode
	// Input selects the source language for AnalyzeContext; AnalyzeC and
	// AnalyzeIR override it.
	Input Input
	// Filename is the display name of the source, threaded onto the
	// program (ir.Program.File) so checker diagnostics can point at
	// file:line:col. Purely cosmetic; empty is fine.
	Filename string
	// Attr enables per-object cost attribution: solver work (worklist
	// pops, propagations, materialised sets, meld operations) is charged
	// to the owning abstract object and surfaced via Result.HotObjects
	// and Report.HotObjects. Off by default — the disabled path costs
	// one predicted nil-check per counter bump.
	Attr bool
	// Parallel selects the worker count for the VSFS main solve: values
	// ≥ 2 run the sharded parallel engine (core.SolveParallelContext),
	// 0/1 run sequentially. Only the VSFS backend parallelises; SFS,
	// CFG-free, and Andersen runs — including degradation rungs — ignore
	// it. Every Parallel ≥ 2 produces facts, findings, and reports
	// byte-identical to the sequential solve (the parallel-eq-sequential
	// oracle invariant), so the choice is purely a latency/CPU trade.
	Parallel int
}

// ParallelStats describes the sharded engine's schedule; see
// core.ParallelStats. Result.Parallelism returns nil for sequential
// runs.
type ParallelStats = core.ParallelStats

// ShardCount is the parallel engine's fixed shard count (objects are
// partitioned by ID mod ShardCount); re-exported so servers can
// materialise per-shard metric series without reaching into internal
// packages.
const ShardCount = core.ShardCount

// Shape is the Table II-style program feature vector computed during
// the auxiliary phase; see internal/shape.
type Shape = shape.Profile

// Timings records per-phase wall-clock durations of one Analyze run.
type Timings struct {
	Andersen time.Duration `json:"andersen"`
	MemSSA   time.Duration `json:"memSSA"`
	SVFG     time.Duration `json:"svfg"`
	Solve    time.Duration `json:"solve"`
	Total    time.Duration `json:"total"`
}

// Result is a solved program: flow-(in)sensitive points-to facts plus
// the resolved call graph. A Result is immutable once returned and safe
// for concurrent queries.
type Result struct {
	mode Mode

	prog *ir.Program
	aux  *andersen.Result
	g    *svfg.Graph

	sfsRes  *sfs.Result
	vsfsRes *core.Result
	cfRes   *cfgfree.Result

	timings Timings

	// hash identifies the source text (guard.Hash); "" for runs over
	// pre-built programs.
	hash string
	// shape is the Table II-style feature vector, computed right after
	// the auxiliary phase and therefore present even on degraded runs.
	shape Shape
	// attr holds per-object cost attribution when Options.Attr was set;
	// nil otherwise. On degraded runs it accumulates across ladder
	// rungs, so conservation against single-solver gauges holds only
	// for clean runs.
	attr *obs.ObjectAttr
	// budgetSteps/budgetBytes record governed-run spend at completion
	// (0 when no budget was attached).
	budgetSteps int64
	budgetBytes int64

	// Degradation state: when a resource budget is exhausted after the
	// auxiliary phase has completed, the run walks down a ladder instead
	// of failing: a VSFS/SFS run first retries on the CFG-free backend
	// (flow-sensitive, much cheaper) under a fresh budget, and only if
	// that breaches too falls back to the flow-insensitive Andersen
	// result. mode is rewritten to the rung that answered, so every
	// query dispatches exactly as a standalone run of that backend
	// would.
	requested        Mode
	degraded         bool
	degradation      string
	degradedPhase    string
	degradedResource string
}

// Timings returns the per-phase wall-clock durations of the run.
func (r *Result) Timings() Timings { return r.timings }

// Shape returns the Table II-style program feature vector. It is
// computed right after the auxiliary phase, so it is valid even on
// degraded runs, and deterministic: re-analysing the same source
// reproduces it bit-for-bit.
func (r *Result) Shape() Shape { return r.shape }

// Attr returns the per-object cost attribution of the run, or nil when
// Options.Attr was not set. On degraded runs the counters accumulate
// across ladder rungs.
func (r *Result) Attr() *obs.ObjectAttr { return r.attr }

// HotObjects returns the k most expensive abstract objects of the run
// by attributed solver cost (propagations + pops + melds), or nil when
// attribution was off. Object ID 0 is the "(unattributed)" bucket
// holding top-level (non-object) work.
func (r *Result) HotObjects(k int) []obs.HotObject {
	if r.attr == nil {
		return nil
	}
	return r.attr.TopK(k, func(o uint32) string { return r.prog.NameOf(ir.ID(o)) })
}

// Parallelism returns the sharded engine's schedule statistics (worker
// count, shard pop distribution, steal count, imbalance ratio, guard
// ledger), or nil when the answering solve ran sequentially — including
// runs requested with Options.Parallel that degraded onto a sequential
// ladder rung. Everything in it except Workers, Steals, and wall time
// is deterministic across worker counts.
func (r *Result) Parallelism() *ParallelStats {
	if r.vsfsRes == nil {
		return nil
	}
	return r.vsfsRes.Stats.Parallel
}

// RunRecord is one entry of the persistent run ledger (obs.Ledger): a
// compact, append-only summary of a completed analysis. Fields are
// append-only so old ledgers stay parseable.
type RunRecord struct {
	Time        string `json:"time"`
	Program     string `json:"program,omitempty"` // source hash (guard.Hash)
	Requested   string `json:"requested"`
	Backend     string `json:"backend"` // mode that actually answered
	Degraded    bool   `json:"degraded,omitempty"`
	Degradation string `json:"degradation,omitempty"`
	Shape       Shape  `json:"shape"`

	AndersenMs float64 `json:"andersenMs"`
	MemSSAMs   float64 `json:"memSSAMs"`
	SVFGMs     float64 `json:"svfgMs"`
	SolveMs    float64 `json:"solveMs"`
	TotalMs    float64 `json:"totalMs"`

	BudgetSteps int64 `json:"budgetSteps,omitempty"`
	BudgetBytes int64 `json:"budgetBytes,omitempty"`

	Findings int `json:"findings"`
}

func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// RunRecord builds the ledger entry for this run. The caller supplies
// the timestamp and the findings count (len(r.Check()) or a cached
// value) so building a record never re-runs the checkers.
func (r *Result) RunRecord(now time.Time, findings int) RunRecord {
	return RunRecord{
		Time:        now.UTC().Format(time.RFC3339Nano),
		Program:     r.hash,
		Requested:   r.requested.String(),
		Backend:     r.mode.String(),
		Degraded:    r.degraded,
		Degradation: r.degradation,
		Shape:       r.shape,
		AndersenMs:  millis(r.timings.Andersen),
		MemSSAMs:    millis(r.timings.MemSSA),
		SVFGMs:      millis(r.timings.SVFG),
		SolveMs:     millis(r.timings.Solve),
		TotalMs:     millis(r.timings.Total),
		BudgetSteps: r.budgetSteps,
		BudgetBytes: r.budgetBytes,
		Findings:    findings,
	}
}

// Mode returns the analysis mode that produced the answers: the
// requested mode, or the degradation-ladder rung that answered
// (CFGFree or FlowInsensitive) after a budget breach.
func (r *Result) Mode() Mode { return r.mode }

// RequestedMode returns the mode the caller asked for, which differs
// from Mode only on degraded runs.
func (r *Result) RequestedMode() Mode { return r.requested }

// Degraded reports whether the run exhausted a resource budget after
// the auxiliary phase and fell back down the ladder (to the CFG-free
// or flow-insensitive result; Mode tells which).
func (r *Result) Degraded() bool { return r.degraded }

// Degradation returns the human-readable reason for the fallback, or
// "" when the run completed at full precision.
func (r *Result) Degradation() string { return r.degradation }

// DegradedCause returns the pipeline phase and budget resource that
// triggered the fallback ("", "" when not degraded).
func (r *Result) DegradedCause() (phase, resource string) {
	return r.degradedPhase, r.degradedResource
}

// degrade rewrites the Result to answer every query from the
// already-computed auxiliary analysis. Only *guard.ErrBudgetExceeded
// qualifies: cancellation is the caller's abort and panics are
// correctness failures — neither may silently lose precision.
func (r *Result) degrade(be *guard.ErrBudgetExceeded) {
	r.mode = FlowInsensitive
	r.degraded = true
	r.degradedPhase = be.Phase
	r.degradedResource = string(be.Resource)
	r.degradation = fmt.Sprintf(
		"%s budget exceeded in %s phase (limit %d); fell back to flow-insensitive (Andersen) result",
		be.Resource, be.Phase, be.Limit)
	r.sfsRes = nil
	r.vsfsRes = nil
	r.cfRes = nil
}

// degradeVia is the degradation ladder. A requested VSFS/SFS run that
// breached its budget retries on the CFG-free backend — still
// flow-sensitive, but with none of the memory-SSA/SVFG construction
// cost — under a fresh budget with the original envelope (the original
// is spent, and re-arming re-bases the memory baseline). Only if the
// rung itself breaches does the run bottom out on the auxiliary
// Andersen result. A requested CFGFree or FlowInsensitive run has no
// rung above Andersen and degrades directly. Degradation provenance
// (phase, resource, Degradation text) always names the ORIGINAL
// breach, never the rung's. A panic or cancellation inside the rung
// propagates as an error — those must not silently lose precision.
func (r *Result) degradeVia(ctx context.Context, hash string, be *guard.ErrBudgetExceeded) error {
	if r.requested != VSFS && r.requested != SFS {
		r.degrade(be)
		return nil
	}
	rungCtx := ctx
	if b := guard.BudgetFrom(ctx); b != nil {
		rungCtx = guard.WithBudget(ctx, guard.NewBudget(b.Limits()))
	}
	// The breach may have interrupted the memory-SSA pass mid-rewrite,
	// leaving instruction labels stale; renumbering is idempotent and
	// restores the label table. The CFG-free facts themselves are
	// invariant under memssa's rewrites (entry pre-blocks, CallRet
	// markers, MEMPHIs) — only labels shift.
	r.prog.Renumber()
	t := time.Now()
	sp := obs.StartSpan(ctx, "cfgfree-retry").Arg("after", be.Phase)
	var cf *cfgfree.Result
	// The rung runs under its own phase name: re-entering the breached
	// phase would replay that phase's injected faults into the fresh
	// budget, and "cfgfree" gives the fault plan a way to target the
	// rung itself.
	err := guard.Recover(rungCtx, "cfgfree", hash, func() error {
		var cerr error
		cf, cerr = cfgfree.SolveContext(rungCtx, r.prog, r.aux)
		return cerr
	})
	sp.End()
	r.timings.Solve += time.Since(t)
	if err != nil {
		if _, ok := budgetBreach(err); ok {
			r.degrade(be)
			return nil
		}
		return err
	}
	r.mode = CFGFree
	r.degraded = true
	r.degradedPhase = be.Phase
	r.degradedResource = string(be.Resource)
	r.degradation = fmt.Sprintf(
		"%s budget exceeded in %s phase (limit %d); fell back to CFG-free flow-sensitive result",
		be.Resource, be.Phase, be.Limit)
	r.sfsRes = nil
	r.vsfsRes = nil
	r.cfRes = cf
	return nil
}

// pointsTo dispatches to the selected analysis.
func (r *Result) pointsTo(v ir.ID) *bitset.Sparse {
	switch r.mode {
	case SFS:
		return r.sfsRes.PointsTo(v)
	case FlowInsensitive:
		return r.aux.PointsTo(v)
	case CFGFree:
		return r.cfRes.PointsTo(v)
	default:
		return r.vsfsRes.PointsTo(v)
	}
}

func (r *Result) calleesOf(call *ir.Instr) []*ir.Function {
	switch r.mode {
	case SFS:
		return r.sfsRes.CalleesOf(call)
	case FlowInsensitive:
		return r.aux.CalleesOf(call)
	case CFGFree:
		return r.cfRes.CalleesOf(call)
	default:
		return r.vsfsRes.CalleesOf(call)
	}
}

// AnalyzeC compiles mini-C source and solves it.
func AnalyzeC(src string, opts Options) (*Result, error) {
	opts.Input = InputC
	return AnalyzeContext(context.Background(), src, opts)
}

// AnalyzeIR parses textual IR and solves it.
func AnalyzeIR(src string, opts Options) (*Result, error) {
	opts.Input = InputIR
	return AnalyzeContext(context.Background(), src, opts)
}

// AnalyzeContext compiles src in the language selected by opts.Input and
// solves it, aborting with ctx.Err() when the context is cancelled or
// its deadline passes. The solver worklist loops poll the context, so
// cancellation takes effect promptly even mid-fixpoint.
//
// Resource governance rides on the context: attach a *guard.Budget with
// guard.WithBudget to bound the run, in which case a budget exhausted
// after the auxiliary phase degrades the Result (Degraded reports true)
// to the flow-insensitive answer instead of failing. A panic in any
// phase is isolated and returned as a *guard.PhaseError.
func AnalyzeContext(ctx context.Context, src string, opts Options) (*Result, error) {
	hash := guard.Hash([]byte(src))
	sp := obs.StartSpan(ctx, "parse").Arg("input", opts.Input.String()).Arg("bytes", len(src))
	var prog *ir.Program
	err := guard.Recover(ctx, "parse", hash, func() error {
		var perr error
		if opts.Input == InputIR {
			prog, perr = irparse.Parse(src)
		} else {
			prog, perr = lang.Compile(src)
		}
		return perr
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	prog.File = opts.Filename
	return analyzeProgram(ctx, prog, opts, hash)
}

// AnalyzeProgram runs the staged pipeline over an already-built program.
// The program must be finalized and not previously analysed (the
// memory-SSA pass inserts nodes).
func AnalyzeProgram(prog *ir.Program, opts Options) (*Result, error) {
	return AnalyzeProgramContext(context.Background(), prog, opts)
}

// AnalyzeProgramContext is AnalyzeProgram with cancellation and
// resource governance; see AnalyzeContext.
func AnalyzeProgramContext(ctx context.Context, prog *ir.Program, opts Options) (*Result, error) {
	return analyzeProgram(ctx, prog, opts, "")
}

// budgetBreach extracts the degradation trigger from a phase error:
// only a typed budget breach qualifies. Cancellation and deadlines
// propagate (the caller aborted), and panics propagate (correctness
// failures must not silently lose precision).
func budgetBreach(err error) (*guard.ErrBudgetExceeded, bool) {
	var be *guard.ErrBudgetExceeded
	if errors.As(err, &be) {
		return be, true
	}
	return nil, false
}

func analyzeProgram(ctx context.Context, prog *ir.Program, opts Options, hash string) (*Result, error) {
	r := &Result{mode: opts.Mode, requested: opts.Mode, prog: prog, hash: hash}
	if opts.Attr {
		r.attr = obs.NewObjectAttr(prog.NumValues())
		ctx = obs.WithCollector(ctx, r.attr)
	}
	start := time.Now()
	sp := obs.StartSpan(ctx, "andersen")
	err := guard.Recover(ctx, "andersen", hash, func() error {
		var aerr error
		r.aux, aerr = andersen.AnalyzeContext(ctx, prog)
		return aerr
	})
	if err != nil {
		// Nothing to degrade to: the auxiliary result is the fallback.
		return nil, err
	}
	sp.Arg("pops", r.aux.Stats.Pops).Arg("propagations", r.aux.Stats.Propagations).End()
	r.timings.Andersen = time.Since(start)
	// The shape profile needs only the IR and the auxiliary result, so
	// it is available to every later consumer — including the backend
	// chooser that runs before the staged pipeline, and degraded runs.
	r.shape = shape.Of(prog, r.aux)

	finish := func() (*Result, error) {
		r.timings.Total = time.Since(start)
		if b := guard.BudgetFrom(ctx); b != nil {
			r.budgetSteps = b.StepsUsed()
			r.budgetBytes = b.BytesUsed()
		}
		return r, nil
	}

	if opts.Mode == CFGFree {
		// The CFG-free backend consumes the partial-SSA program
		// directly: no memory SSA, no SVFG. Its worklist ticks under
		// the phase name "cfgfree", but for budget/fault attribution
		// the phase wrapper is "solve" like every other main phase.
		t := time.Now()
		sp = obs.StartSpan(ctx, "solve").Arg("mode", opts.Mode.String())
		err = guard.Recover(ctx, "solve", hash, func() error {
			var cerr error
			r.cfRes, cerr = cfgfree.SolveContext(ctx, prog, r.aux)
			return cerr
		})
		sp.End()
		r.timings.Solve = time.Since(t)
		if err != nil {
			if be, ok := budgetBreach(err); ok {
				r.degrade(be)
				return finish()
			}
			return nil, err
		}
		return finish()
	}

	var mssa *memssa.Result
	t := time.Now()
	sp = obs.StartSpan(ctx, "memssa")
	err = guard.Recover(ctx, "memssa", hash, func() error {
		var merr error
		mssa, merr = memssa.BuildContext(ctx, prog, r.aux)
		return merr
	})
	sp.End()
	r.timings.MemSSA = time.Since(t)
	if err != nil {
		if be, ok := budgetBreach(err); ok {
			if lerr := r.degradeVia(ctx, hash, be); lerr != nil {
				return nil, lerr
			}
			return finish()
		}
		return nil, err
	}

	t = time.Now()
	sp = obs.StartSpan(ctx, "svfg")
	err = guard.Recover(ctx, "svfg", hash, func() error {
		var gerr error
		r.g, gerr = svfg.BuildContext(ctx, prog, r.aux, mssa)
		return gerr
	})
	r.timings.SVFG = time.Since(t)
	if err != nil {
		sp.End()
		r.g = nil
		if be, ok := budgetBreach(err); ok {
			if lerr := r.degradeVia(ctx, hash, be); lerr != nil {
				return nil, lerr
			}
			return finish()
		}
		return nil, err
	}
	sp.Arg("nodes", r.g.NumNodes).
		Arg("directEdges", r.g.NumDirectEdges).
		Arg("indirectEdges", r.g.NumIndirectEdges).
		End()

	t = time.Now()
	sp = obs.StartSpan(ctx, "solve").Arg("mode", opts.Mode.String())
	err = guard.Recover(ctx, "solve", hash, func() error {
		var serr error
		switch opts.Mode {
		case SFS:
			r.sfsRes, serr = sfs.SolveContext(ctx, r.g)
		case FlowInsensitive:
			// Auxiliary results only.
		default:
			if opts.Parallel > 1 {
				r.vsfsRes, serr = core.SolveParallelContext(ctx, r.g, opts.Parallel)
			} else {
				r.vsfsRes, serr = core.SolveContext(ctx, r.g)
			}
		}
		return serr
	})
	sp.End()
	r.timings.Solve = time.Since(t)
	if err != nil {
		if be, ok := budgetBreach(err); ok {
			if lerr := r.degradeVia(ctx, hash, be); lerr != nil {
				return nil, lerr
			}
			return finish()
		}
		return nil, err
	}
	return finish()
}

// matchingVars returns the pointer temps belonging to the source-level
// variable name within a function: mini-C lowers each read of x to a
// temp named "x.<n>", so the union over those temps is every value x
// may hold at some read. Exact matches (for IR-level names) also count.
func (r *Result) matchingVars(fn, name string) []ir.ID {
	f := r.prog.FuncByName(fn)
	var out []ir.ID
	prefix := name + "."
	for id := ir.ID(1); int(id) < r.prog.NumValues(); id++ {
		if !r.prog.IsPointer(id) {
			continue
		}
		n := r.prog.Value(id).Name
		if n != name && !strings.HasPrefix(n, prefix) {
			continue
		}
		if strings.Contains(n, ".addr") {
			continue
		}
		if f != nil && !definedIn(r.prog, f, id) {
			continue
		}
		out = append(out, id)
	}
	return out
}

func definedIn(prog *ir.Program, f *ir.Function, v ir.ID) bool {
	for _, p := range f.Params {
		if p == v {
			return true
		}
	}
	found := false
	f.ForEachInstr(func(in *ir.Instr) {
		if in.Def == v {
			found = true
		}
	})
	return found
}

// objectSummary returns everything object o may ever hold, under the
// selected analysis.
func (r *Result) objectSummary(o ir.ID) *bitset.Sparse {
	switch r.mode {
	case SFS:
		return r.sfsRes.ObjectSummary(o)
	case FlowInsensitive:
		return r.aux.PointsTo(o)
	case CFGFree:
		return r.cfRes.ObjectSummary(o)
	default:
		return r.vsfsRes.ObjectSummary(o)
	}
}

// contentsBefore returns what object o may hold immediately before the
// instruction labelled label, under the selected analysis: the IN set
// for SFS, the consume-version points-to set for VSFS, the
// strong-update-window contents for CFGFree, and the flow-insensitive
// object summary for Andersen.
func (r *Result) contentsBefore(label uint32, o ir.ID) *bitset.Sparse {
	switch r.mode {
	case SFS:
		return r.sfsRes.InSet(label, o)
	case FlowInsensitive:
		return r.aux.PointsTo(o)
	case CFGFree:
		return r.cfRes.ConsumedSet(label, o)
	default:
		return r.vsfsRes.ConsumedSet(label, o)
	}
}

// storageObjects returns the abstract objects backing a source variable:
// the mini-C lowering names a local x in fn "fn.x" and a global g
// "g.obj"; IR-level address-taken objects may match by bare name.
func (r *Result) storageObjects(fn, name string) []ir.ID {
	var out []ir.ID
	candidates := map[string]bool{name: true, name + ".obj": true}
	if fn != "" {
		candidates[fn+"."+name] = true
	}
	for id := ir.ID(1); int(id) < r.prog.NumValues(); id++ {
		if r.prog.IsObject(id) && candidates[r.prog.Value(id).Name] {
			out = append(out, id)
		}
	}
	return out
}

// PointsToVar returns the sorted names of the abstract objects the named
// variable may point to: the union over every read of the variable plus
// everything its storage location may hold. Pass fn == "" to match the
// name anywhere in the program.
func (r *Result) PointsToVar(fn, name string) []string {
	merged := r.varSet(fn, name)
	var out []string
	merged.ForEach(func(o uint32) { out = append(out, r.prog.NameOf(ir.ID(o))) })
	sort.Strings(out)
	return out
}

func (r *Result) varSet(fn, name string) *bitset.Sparse {
	merged := bitset.New()
	for _, v := range r.matchingVars(fn, name) {
		merged.UnionWith(r.pointsTo(v))
	}
	for _, o := range r.storageObjects(fn, name) {
		merged.UnionWith(r.objectSummary(o))
	}
	return merged
}

// MayAlias reports whether two variables may point to a common object.
func (r *Result) MayAlias(fn1, v1, fn2, v2 string) bool {
	return r.varSet(fn1, v1).Intersects(r.varSet(fn2, v2))
}

// CallGraph returns the resolved call graph as function → sorted callee
// names. Synthetic functions (__globals__, __cinit__) are omitted.
func (r *Result) CallGraph() map[string][]string {
	out := make(map[string][]string)
	for _, f := range r.prog.Funcs {
		if strings.HasPrefix(f.Name, "__") {
			continue
		}
		seen := map[string]bool{}
		f.ForEachInstr(func(in *ir.Instr) {
			if in.Op != ir.Call {
				return
			}
			for _, callee := range r.calleesOf(in) {
				if !strings.HasPrefix(callee.Name, "__") {
					seen[callee.Name] = true
				}
			}
		})
		callees := make([]string, 0, len(seen))
		for n := range seen {
			callees = append(callees, n)
		}
		sort.Strings(callees)
		out[f.Name] = callees
	}
	return out
}

// Functions returns the program's function names in definition order,
// omitting synthetic ones.
func (r *Result) Functions() []string {
	var out []string
	for _, f := range r.prog.Funcs {
		if !strings.HasPrefix(f.Name, "__") {
			out = append(out, f.Name)
		}
	}
	return out
}

// Summary aggregates headline statistics for the analysed program.
type Summary struct {
	Mode          string `json:"mode"`
	Functions     int    `json:"functions"`
	SVFGNodes     int    `json:"svfgNodes"`
	DirectEdges   int    `json:"directEdges"`
	IndirectEdges int    `json:"indirectEdges"`
	TopLevelVars  int    `json:"topLevelVars"`
	AddressTaken  int    `json:"addressTaken"`

	// Main-phase effort; zero for FlowInsensitive.
	NodesProcessed    int `json:"nodesProcessed"`
	Propagations      int `json:"propagations"`
	Changed           int `json:"changed"`
	PtsSets           int `json:"ptsSets"`
	WorklistHighWater int `json:"worklistHighWater"`

	// Auxiliary-phase effort.
	AuxPropagations      int `json:"auxPropagations"`
	AuxWorklistHighWater int `json:"auxWorklistHighWater"`

	// VSFS-only versioning facts.
	Prelabels        int `json:"prelabels"`
	DistinctVersions int `json:"distinctVersions"`
	MeldOps          int `json:"meldOps"`
	MeldIterations   int `json:"meldIterations"`
}

// Stats returns the run's Summary.
func (r *Result) Stats() Summary {
	s := Summary{
		Mode:      r.mode.String(),
		Functions: len(r.prog.Funcs),
	}
	// r.g is nil when the run degraded before the SVFG was assembled.
	if r.g != nil {
		s.SVFGNodes = r.g.NumNodes
		s.DirectEdges = r.g.NumDirectEdges
		s.IndirectEdges = r.g.NumIndirectEdges
		s.TopLevelVars = r.g.NumTopLevel
		s.AddressTaken = r.g.NumAddressTaken
	}
	s.AuxPropagations = r.aux.Stats.Propagations
	s.AuxWorklistHighWater = r.aux.Stats.WorklistHW
	switch r.mode {
	case SFS:
		s.NodesProcessed = r.sfsRes.Stats.NodesProcessed
		s.Propagations = r.sfsRes.Stats.Propagations
		s.Changed = r.sfsRes.Stats.Changed
		s.PtsSets = r.sfsRes.Stats.PtsSets
		s.WorklistHighWater = r.sfsRes.Stats.WorklistHW
	case CFGFree:
		s.NodesProcessed = r.cfRes.Stats.NodesProcessed
		s.Propagations = r.cfRes.Stats.Propagations
		s.Changed = r.cfRes.Stats.Changed
		s.PtsSets = r.cfRes.Stats.PtsSets
		s.WorklistHighWater = r.cfRes.Stats.WorklistHW
	case VSFS:
		s.NodesProcessed = r.vsfsRes.Stats.NodesProcessed
		s.Propagations = r.vsfsRes.Stats.Propagations
		s.Changed = r.vsfsRes.Stats.Changed
		s.PtsSets = r.vsfsRes.Stats.PtsSets
		s.WorklistHighWater = r.vsfsRes.Stats.WorklistHW
		s.Prelabels = r.vsfsRes.Stats.Versioning.Prelabels
		s.DistinctVersions = r.vsfsRes.Stats.Versioning.DistinctVersions
		s.MeldOps = r.vsfsRes.Stats.Versioning.MeldOps
		s.MeldIterations = r.vsfsRes.Stats.Versioning.Iterations
	}
	return s
}

// Explain returns human-readable value-flow witnesses for every object
// the named variable may point to — the "why" behind each points-to
// fact. Only available for VSFS and SFS runs (the witnesses are SVFG
// paths, which the CFG-free and flow-insensitive backends never
// build); empty otherwise.
func (r *Result) Explain(fn, name string) []string {
	if r.mode == FlowInsensitive || r.mode == CFGFree || r.g == nil {
		return nil
	}
	holds := func(x, o ir.ID) bool {
		if r.prog.IsPointer(x) {
			return r.pointsTo(x).Has(uint32(o))
		}
		return r.objectSummary(x).Has(uint32(o))
	}
	var out []string
	for _, v := range r.matchingVars(fn, name) {
		r.pointsTo(v).ForEach(func(o uint32) {
			if w := r.g.ExplainPointsTo(holds, v, ir.ID(o)); w != nil {
				out = append(out, w.Format(r.prog))
			}
		})
	}
	return out
}

// varGroups groups fn's temps by their source-variable prefix and
// returns the sorted group names with the union of each group's
// points-to sets. Shared by Dump and Report so the two renderings can
// never drift apart.
func (r *Result) varGroups(f *ir.Function) ([]string, map[string]*bitset.Sparse) {
	groups := map[string]*bitset.Sparse{}
	collect := func(v ir.ID) {
		name := r.prog.Value(v).Name
		if i := strings.LastIndexByte(name, '.'); i > 0 {
			name = name[:i]
		}
		if strings.HasSuffix(name, ".addr") || strings.HasPrefix(name, "__") {
			return
		}
		set := groups[name]
		if set == nil {
			set = bitset.New()
			groups[name] = set
		}
		set.UnionWith(r.pointsTo(v))
	}
	for _, p := range f.Params {
		collect(p)
	}
	f.ForEachInstr(func(in *ir.Instr) {
		if in.Def != ir.None {
			collect(in.Def)
		}
	})
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, groups
}

// objNames renders a points-to set as sorted object names.
func (r *Result) objNames(set *bitset.Sparse) []string {
	var objs []string
	set.ForEach(func(o uint32) { objs = append(objs, r.prog.NameOf(ir.ID(o))) })
	sort.Strings(objs)
	return objs
}

// Dump writes a human-readable points-to report: for every function,
// every source-level pointer variable and the objects it may point to.
func (r *Result) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "analysis: %s\n", r.mode)
	for _, f := range r.prog.Funcs {
		if strings.HasPrefix(f.Name, "__") {
			continue
		}
		fmt.Fprintf(&b, "func %s:\n", f.Name)
		names, groups := r.varGroups(f)
		for _, n := range names {
			if groups[n].IsEmpty() {
				continue
			}
			fmt.Fprintf(&b, "  %-16s → {%s}\n", n, strings.Join(r.objNames(groups[n]), ", "))
		}
	}
	return b.String()
}
