package vsfs

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vsfs/internal/diag"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/checks golden files")

// corpusTaint is the taint configuration the corpus is replayed with;
// only taint.c defines the source and sink functions, so it is a no-op
// for every other program.
var corpusTaint = CheckConfig{TaintSource: "source", TaintSink: "sink"}

// renderCorpus runs the full -check pipeline on one corpus program
// under the given analysis mode: solve, check, diagnose, apply inline
// suppressions, and apply the committed baseline sidecar if one exists.
func renderCorpus(t *testing.T, path string, mode Mode) string {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := AnalyzeC(string(src), Options{Mode: mode, Filename: filepath.Base(path)})
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	raws := []diag.Raw{}
	for _, f := range r.CheckWith(corpusTaint) {
		raws = append(raws, diag.Raw{Kind: f.Kind, Func: f.Func, Label: f.Label,
			Line: f.Line, Col: f.Col, Message: f.Message})
	}
	findings := diag.New(filepath.Base(path), raws, nil)
	findings, suppressed := diag.Suppress(string(src), findings)
	baselined := 0
	if bf, err := os.Open(path + ".baseline"); err == nil {
		b, err := diag.ReadBaseline(bf)
		bf.Close()
		if err != nil {
			t.Fatalf("%s: %v", path+".baseline", err)
		}
		findings, baselined = b.Filter(findings)
	}
	var sb strings.Builder
	diag.RenderText(&sb, findings)
	fmt.Fprintf(&sb, "# findings: %d, suppressed: %d, baselined: %d\n",
		len(findings), suppressed, baselined)
	return sb.String()
}

// TestChecksCorpus replays every testdata/checks program through the
// checker suite and diagnostics engine and compares the rendered output
// to the committed golden file. Run with -update to regenerate goldens.
// Each program is rendered under both flow-sensitive modes and the
// outputs must be byte-identical — the checker-level face of the
// precision theorem, pinned on real mini-C programs rather than random
// IR.
func TestChecksCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "checks", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			got := renderCorpus(t, path, VSFS)
			if sfs := renderCorpus(t, path, SFS); sfs != got {
				t.Errorf("SFS output differs from VSFS:\n--- SFS ---\n%s--- VSFS ---\n%s", sfs, got)
			}
			golden := path + ".golden"
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run go test -run ChecksCorpus -update ./): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestChecksCorpusFindsEveryKind guards the corpus against rot: every
// checker kind must be exercised by at least one program.
func TestChecksCorpusFindsEveryKind(t *testing.T) {
	files, _ := filepath.Glob(filepath.Join("testdata", "checks", "*.c"))
	seen := map[string]bool{}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		r, err := AnalyzeC(string(src), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range r.CheckWith(corpusTaint) {
			seen[f.Kind] = true
		}
	}
	for _, kind := range []string{"null-deref", "dangling-return", "stack-escape",
		"use-after-free", "double-free", "memory-leak", "leak"} {
		if !seen[kind] {
			t.Errorf("no corpus program produces a %s finding", kind)
		}
	}
}
