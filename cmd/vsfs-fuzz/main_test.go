package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestSmallSeedWindowIsClean(t *testing.T) {
	code, out, errOut := runCLI(t, "-seeds", "5")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "5 program(s), no violations") {
		t.Fatalf("unexpected verdict: %q", out)
	}
}

func TestShiftedWindowAndSkipResolve(t *testing.T) {
	code, out, _ := runCLI(t, "-start", "2000", "-seeds", "3", "-skip-resolve", "-max-witnesses", "50")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s", code, out)
	}
}

func TestFaultsMode(t *testing.T) {
	code, out, errOut := runCLI(t, "-faults", "-skip-resolve", "-seeds", "3")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "3 program(s), no violations") {
		t.Fatalf("unexpected verdict: %q", out)
	}
}

func TestServerMode(t *testing.T) {
	code, out, _ := runCLI(t, "-mode", "server", "-seeds", "1")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s", code, out)
	}
}

func TestProfileMode(t *testing.T) {
	code, out, _ := runCLI(t, "-profile", "du", "-skip-resolve")
	if code != 0 {
		t.Fatalf("exit %d, stdout:\n%s", code, out)
	}
	if !strings.Contains(out, "1 program(s), no violations") {
		t.Fatalf("unexpected verdict: %q", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, errOut := runCLI(t, "-profile", "nosuch"); code != 2 ||
		!strings.Contains(errOut, "unknown profile") {
		t.Fatalf("unknown profile: exit %d, stderr %q", code, errOut)
	}
	if code, _, _ := runCLI(t, "-mode", "nosuch"); code != 2 {
		t.Fatalf("unknown mode should exit 2, got %d", code)
	}
	if code, _, _ := runCLI(t, "-bogusflag"); code != 2 {
		t.Fatalf("bad flag should exit 2, got %d", code)
	}
}
