// Command vsfs-fuzz drives the differential-testing oracle over random
// workload programs and the named benchmark profiles, looking for any
// divergence between the backends — Andersen, SFS, VSFS, and the
// CFG-free flow-sensitive solver, whose results must bracket as
// sfs ⊆ cfgfree ⊆ andersen pointwise:
//
//	vsfs-fuzz -seeds 500                 check 500 random programs
//	vsfs-fuzz -start 1000 -seeds 500     a different window of seeds
//	vsfs-fuzz -profile all               check all 15 named profiles
//	vsfs-fuzz -mode server -seeds 20     daemon + gateway identity
//	vsfs-fuzz -mode all -seeds 100       solver battery and daemon checks
//	vsfs-fuzz -faults -seeds 50          fault-injection battery per program
//	vsfs-fuzz -free 0                    generate programs without free()
//	vsfs-fuzz -corpus testdata/checks    replay mini-C corpus programs
//	vsfs-fuzz -minimize -out regressions minimize failures into a corpus
//	vsfs-fuzz -skip-resolve              skip the re-solve determinism check
//
// With -faults each program is additionally run through the resource-
// governance battery (internal/oracle CheckDegradation, CheckFaults):
// deterministic panics in every pipeline phase and seeded budget
// blowouts, asserting the process never dies, panics surface as typed
// phase errors, and an over-budget run degrades down the ladder to
// exactly the standalone CFG-free result (or, if that rung also
// breaches, the standalone Andersen result) — never an unsound
// partial one.
//
// Every failing program is reported with its violations; with -minimize
// it is also delta-debugged to a minimal reproducer and written to the
// -out directory as a .ir file, ready to be committed to
// internal/oracle/testdata/regressions/ where `go test` replays the
// corpus forever. Exit status is 0 when every check passed, 1 on any
// violation, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/lang"
	"vsfs/internal/oracle"
	"vsfs/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type fuzzConfig struct {
	mode       string
	faults     bool
	minimize   bool
	outDir     string
	opts       oracle.Options
	stdout     io.Writer
	stderr     io.Writer
	violations int
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vsfs-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seeds := fs.Int64("seeds", 100, "number of random seeds to check")
	start := fs.Int64("start", 0, "first seed of the window")
	mode := fs.String("mode", "diff", "what to check: diff (solver battery), server (daemon + gateway identity), or all")
	profile := fs.String("profile", "", "check a named benchmark profile instead of random seeds (or \"all\")")
	faults := fs.Bool("faults", false, "also run the fault-injection battery (panic isolation, budget degradation) on every program")
	minimize := fs.Bool("minimize", false, "delta-debug each failure to a minimal reproducer")
	outDir := fs.String("out", "regressions", "directory minimized reproducers are written to")
	skipResolve := fs.Bool("skip-resolve", false, "skip the re-solve determinism check (the most expensive invariant)")
	maxWitnesses := fs.Int("max-witnesses", oracle.DefaultMaxWitnesses, "points-to facts replayed through the witness search per program (-1 = all)")
	freeProb := fs.Float64("free", 0.2, "probability of a free() per generated instruction slot, exercising the deallocation checkers")
	corpus := fs.String("corpus", "", "also replay every .c program in this directory through the solver battery")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *mode {
	case "diff", "server", "all":
	default:
		fmt.Fprintf(stderr, "vsfs-fuzz: unknown -mode %q (want diff, server, or all)\n", *mode)
		return 2
	}

	fc := &fuzzConfig{
		mode:     *mode,
		faults:   *faults,
		minimize: *minimize,
		outDir:   *outDir,
		opts:     oracle.Options{SkipResolve: *skipResolve, MaxWitnesses: *maxWitnesses},
		stdout:   stdout,
		stderr:   stderr,
	}

	if *corpus != "" {
		n, err := fc.checkCorpus(*corpus)
		if err != nil {
			fmt.Fprintf(stderr, "vsfs-fuzz: %v\n", err)
			return 2
		}
		if *seeds == 0 && *profile == "" {
			return fc.verdict(n)
		}
	}

	if *profile != "" {
		profiles := workload.Profiles()
		if *profile != "all" {
			p := workload.ProfileByName(*profile)
			if p == nil {
				fmt.Fprintf(stderr, "vsfs-fuzz: unknown profile %q; known:", *profile)
				for _, q := range profiles {
					fmt.Fprintf(stderr, " %s", q.Name)
				}
				fmt.Fprintln(stderr)
				return 2
			}
			profiles = []workload.Profile{*p}
		}
		for i, p := range profiles {
			fc.checkOne(p.Name, p.Build(), int64(i))
		}
		return fc.verdict(len(profiles))
	}

	cfg := workload.DefaultRandomConfig()
	cfg.FreeProb = *freeProb
	for seed := *start; seed < *start+*seeds; seed++ {
		name := fmt.Sprintf("seed %d", seed)
		fc.checkOne(name, workload.Random(seed, cfg), seed)
	}
	return fc.verdict(int(*seeds))
}

// checkCorpus compiles every mini-C program in dir and runs the solver
// battery (including the checker-level invariants) on it. The corpus
// programs are written to exercise specific checkers, so this pins the
// SFS/VSFS/Andersen relationships on curated, human-meaningful inputs
// alongside the random sweep.
func (fc *fuzzConfig) checkCorpus(dir string) (int, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.c"))
	if err != nil || len(files) == 0 {
		return 0, fmt.Errorf("no .c programs in %s", dir)
	}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return 0, err
		}
		prog, err := lang.Compile(string(src))
		if err != nil {
			return 0, fmt.Errorf("%s: %v", path, err)
		}
		if vs := oracle.CheckProgram(prog, fc.opts); len(vs) > 0 {
			fc.violations += len(vs)
			for _, v := range vs {
				fmt.Fprintf(fc.stdout, "FAIL %s: %s\n", path, v)
			}
		}
	}
	return len(files), nil
}

// checkOne runs the configured checks on one program and records any
// violations, minimizing and saving a reproducer when asked to. The
// fault battery re-parses the program's textual form per run because
// the pipeline finalizes (renumbers) the program it analyses.
func (fc *fuzzConfig) checkOne(name string, prog *ir.Program, seed int64) {
	var src string
	if fc.faults {
		src = prog.String()
	}
	if fc.mode == "diff" || fc.mode == "all" {
		if vs := oracle.CheckProgram(prog, fc.opts); len(vs) > 0 {
			fc.report(name, prog, vs)
		}
	}
	if fc.mode == "server" || fc.mode == "all" {
		if vs := oracle.CheckServerIdentity(prog); len(vs) > 0 {
			fc.violations += len(vs)
			for _, v := range vs {
				fmt.Fprintf(fc.stdout, "FAIL %s: %s\n", name, v)
			}
		}
		if vs := oracle.CheckGatewayIdentity(prog); len(vs) > 0 {
			fc.violations += len(vs)
			for _, v := range vs {
				fmt.Fprintf(fc.stdout, "FAIL %s: %s\n", name, v)
			}
		}
	}
	if fc.faults {
		vs := oracle.CheckDegradation(src, fc.opts)
		vs = append(vs, oracle.CheckFaults(src, seed, fc.opts)...)
		if len(vs) > 0 {
			fc.violations += len(vs)
			for _, v := range vs {
				fmt.Fprintf(fc.stdout, "FAIL %s: %s\n", name, v)
			}
		}
	}
}

func (fc *fuzzConfig) report(name string, prog *ir.Program, vs []oracle.Violation) {
	fc.violations += len(vs)
	for _, v := range vs {
		fmt.Fprintf(fc.stdout, "FAIL %s: %s\n", name, v)
	}
	if !fc.minimize {
		return
	}
	invariant := vs[0].Invariant
	fmt.Fprintf(fc.stderr, "minimizing %s against %s...\n", name, invariant)
	min := oracle.Minimize(prog.String(), func(cand *ir.Program) bool {
		for _, v := range oracle.CheckProgram(cand, fc.opts) {
			if v.Invariant == invariant {
				return true
			}
		}
		return false
	})
	file := filepath.Join(fc.outDir, fmt.Sprintf("%s-%s.ir",
		strings.ReplaceAll(name, " ", ""), invariant))
	if err := os.MkdirAll(fc.outDir, 0o755); err != nil {
		fmt.Fprintf(fc.stderr, "vsfs-fuzz: %v\n", err)
		return
	}
	header := fmt.Sprintf("# Minimized by vsfs-fuzz from %s; pinned invariant: %s.\n", name, invariant)
	if err := os.WriteFile(file, []byte(header+min), 0o644); err != nil {
		fmt.Fprintf(fc.stderr, "vsfs-fuzz: %v\n", err)
		return
	}
	fmt.Fprintf(fc.stdout, "wrote %s (%d instructions)\n", file, minSize(min))
}

func minSize(src string) int {
	prog, err := irparse.Parse(src)
	if err != nil {
		return -1
	}
	return oracle.CountInstrs(prog)
}

func (fc *fuzzConfig) verdict(programs int) int {
	if fc.violations > 0 {
		fmt.Fprintf(fc.stdout, "vsfs-fuzz: %d violation(s) across %d program(s)\n", fc.violations, programs)
		return 1
	}
	fmt.Fprintf(fc.stdout, "vsfs-fuzz: %d program(s), no violations\n", programs)
	return 0
}
