package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"vsfs"
	"vsfs/internal/andersen"
	"vsfs/internal/guard"
	"vsfs/internal/irparse"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const okC = `
int main() {
  int a;
  int *p;
  p = &a;
  int *q;
  q = p;
  return 0;
}
`

const buggyC = `
int *g;
int main() {
  int a;
  g = &a;
  return 0;
}
`

const okIR = `
func main() {
entry:
  p = alloc a 0
  q = copy p
  ret
}
`

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunBasicC(t *testing.T) {
	path := writeTemp(t, "p.c", okC)
	code, out, _ := runCLI(t, path)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "func main:") || !strings.Contains(out, "main.a") {
		t.Errorf("dump missing content:\n%s", out)
	}
}

func TestRunModesAndStats(t *testing.T) {
	path := writeTemp(t, "p.c", okC)
	for _, mode := range []string{"vsfs", "sfs", "cfgfree", "andersen"} {
		code, out, _ := runCLI(t, "-mode", mode, "-stats", path)
		if code != 0 {
			t.Fatalf("mode %s exit = %d", mode, code)
		}
		if !strings.Contains(out, "stats: mode="+mode) {
			t.Errorf("mode %s missing stats header:\n%s", mode, out)
		}
	}
}

// TestRunModeMatrixJSON pins the full backend matrix through the CLI:
// every selectable mode (and the cfgfree spelling aliases) parses,
// solves the same file with exit 0, and stamps its name into the
// machine-readable report.
func TestRunModeMatrixJSON(t *testing.T) {
	path := writeTemp(t, "p.c", okC)
	for spelling, canonical := range map[string]string{
		"vsfs":     "vsfs",
		"sfs":      "sfs",
		"cfgfree":  "cfgfree",
		"cfg-free": "cfgfree",
		"cf":       "cfgfree",
		"andersen": "andersen",
		"ander":    "andersen",
	} {
		code, out, errb := runCLI(t, "-mode", spelling, "-json", path)
		if code != exitOK {
			t.Fatalf("-mode %s exit = %d (stderr %q)", spelling, code, errb)
		}
		if !strings.Contains(out, `"mode": "`+canonical+`"`) {
			t.Errorf("-mode %s report missing mode %q:\n%s", spelling, canonical, out[:min(len(out), 400)])
		}
		if strings.Contains(out, `"degraded": true`) {
			t.Errorf("-mode %s unexpectedly degraded", spelling)
		}
	}
}

func TestRunIRFile(t *testing.T) {
	path := writeTemp(t, "p.vir", okIR)
	code, out, _ := runCLI(t, "-callgraph", path)
	if code != 0 || !strings.Contains(out, "call graph:") {
		t.Errorf("exit = %d out:\n%s", code, out)
	}
}

func TestRunCompare(t *testing.T) {
	path := writeTemp(t, "p.c", okC)
	code, out, _ := runCLI(t, "-compare", path)
	if code != 0 || !strings.Contains(out, "SFS ≡ VSFS") {
		t.Errorf("exit = %d out:\n%s", code, out)
	}
}

func TestRunDumpIRAndDot(t *testing.T) {
	path := writeTemp(t, "p.c", okC)
	code, out, _ := runCLI(t, "-dump-ir", path)
	if code != 0 || !strings.Contains(out, "func main()") {
		t.Errorf("dump-ir: exit = %d out:\n%s", code, out)
	}
	code, out, _ = runCLI(t, "-dot", path)
	if code != 0 || !strings.Contains(out, "digraph svfg") {
		t.Errorf("dot: exit = %d out:\n%s", code, out)
	}
	irPath := writeTemp(t, "p.vir", okIR)
	code, out, _ = runCLI(t, "-dump-ir", irPath)
	if code != 0 || !strings.Contains(out, "p = alloc a 0") {
		t.Errorf("dump-ir .vir: exit = %d out:\n%s", code, out)
	}
	code, out, _ = runCLI(t, "-dot", irPath)
	if code != 0 || !strings.Contains(out, "digraph svfg") {
		t.Errorf("dot .vir: exit = %d out:\n%s", code, out)
	}
}

func TestRunCheckFindsBugs(t *testing.T) {
	clean := writeTemp(t, "ok.c", okC)
	code, out, _ := runCLI(t, "-check", clean)
	if code != 0 || !strings.Contains(out, "0 finding(s)") {
		t.Errorf("clean check: exit = %d out:\n%s", code, out)
	}
	buggy := writeTemp(t, "bug.c", buggyC)
	code, out, _ = runCLI(t, "-check", buggy)
	if code != exitFindings || !strings.Contains(out, "stack-escape") {
		t.Errorf("buggy check: exit = %d out:\n%s", code, out)
	}
}

func TestRunErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Error("no args should exit 2")
	}
	if code, _, stderr := runCLI(t, "/no/such/file.c"); code != 1 || stderr == "" {
		t.Error("missing file should exit 1 with a message")
	}
	bad := writeTemp(t, "bad.c", "int main() { return x; }")
	if code, _, stderr := runCLI(t, bad); code != 1 || !strings.Contains(stderr, "undefined name") {
		t.Errorf("bad source: exit = %d stderr = %q", code, stderr)
	}
	p := writeTemp(t, "p.c", okC)
	if code, _, _ := runCLI(t, "-mode", "nope", p); code != 1 {
		t.Error("bad mode should exit 1")
	}
	if code, _, _ := runCLI(t, "-badflag", p); code != 2 {
		t.Error("bad flag should exit 2")
	}
}

func TestRunWhy(t *testing.T) {
	path := writeTemp(t, "p.c", okC)
	code, out, _ := runCLI(t, "-why", "p", path)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "why may") || !strings.Contains(out, "allocation") {
		t.Errorf("witness output missing:\n%s", out)
	}
	code, out, _ = runCLI(t, "-why", "nosuchvar", path)
	if code != 0 || !strings.Contains(out, "no points-to facts") {
		t.Errorf("missing-var output: %d %q", code, out)
	}
}

func TestRunJSONDeterministic(t *testing.T) {
	path := writeTemp(t, "p.c", buggyC)
	code1, out1, _ := runCLI(t, "-json", path)
	code2, out2, _ := runCLI(t, "-json", path)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exit = %d, %d", code1, code2)
	}
	if out1 != out2 {
		t.Fatalf("-json output is not deterministic:\n%s\n---\n%s", out1, out2)
	}
	for _, want := range []string{`"mode": "vsfs"`, `"functions"`, `"findings"`, `"stats"`} {
		if !strings.Contains(out1, want) {
			t.Errorf("-json output missing %s:\n%s", want, out1)
		}
	}
}

func TestRunTimeout(t *testing.T) {
	path := writeTemp(t, "p.c", okC)
	code, _, errb := runCLI(t, "-timeout", "1ns", path)
	if code != exitTimeout {
		t.Fatalf("exit = %d, want %d", code, exitTimeout)
	}
	if !strings.Contains(errb, "timed out") {
		t.Fatalf("stderr missing clean timeout message: %q", errb)
	}
	// A generous limit must not trip.
	if code, _, _ := runCLI(t, "-timeout", "1m", path); code != 0 {
		t.Fatalf("exit with ample timeout = %d, want 0", code)
	}
}

// budgetIR generates a program big enough that the pipeline's budget
// checkpoints actually fire: n heap objects all stored to and loaded
// through one pointer, giving every phase real work.
func budgetIR(n int) string {
	var b strings.Builder
	b.WriteString("func main() {\nentry:\n  p = alloc h 0\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  x%d = alloc o%d 0\n  store p, x%d\n  y%d = load p\n", i, i, i, i)
	}
	b.WriteString("  ret\n}\n")
	return b.String()
}

// TestRunBudgetDegrades drives -max-steps and -max-mem end-to-end. The
// limits are computed adaptively: run Andersen alone and the full
// pipeline under instrumented budgets, then pick a limit past what
// Andersen needs but short of what the flow-sensitive phases need, so
// the breach deterministically lands after the fallback result exists.
func TestRunBudgetDegrades(t *testing.T) {
	src := budgetIR(600)
	path := writeTemp(t, "big.vir", src)

	prog, err := irparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	aux := guard.NewBudget(1<<40, 1<<40, 0)
	if _, err := andersen.AnalyzeContext(guard.WithBudget(context.Background(), aux), prog); err != nil {
		t.Fatal(err)
	}
	aSteps, aBytes := aux.StepsUsed(), aux.BytesUsed()

	full := guard.NewBudget(1<<40, 1<<40, 0)
	if _, err := vsfs.AnalyzeContext(guard.WithBudget(context.Background(), full), src,
		vsfs.Options{Mode: vsfs.VSFS, Input: vsfs.InputIR}); err != nil {
		t.Fatal(err)
	}
	fSteps, fBytes := full.StepsUsed(), full.BytesUsed()
	if fSteps <= aSteps || fBytes <= aBytes+4096 {
		t.Fatalf("generator too small to separate phases: steps %d→%d bytes %d→%d",
			aSteps, fSteps, aBytes, fBytes)
	}

	// Steps: at exactly Andersen's usage the auxiliary phase completes
	// (breach is strict >) and the first flow-sensitive checkpoint trips.
	// The ladder retries with the CFG-free backend under a fresh budget
	// of the same size, which suffices here — the run degrades to the
	// middle rung, not the flow-insensitive floor.
	code, out, errb := runCLI(t, "-json", "-max-steps", strconv.FormatInt(aSteps, 10), path)
	if code != exitDegraded {
		t.Fatalf("-max-steps %d exit = %d, want %d (stderr %q)", aSteps, code, exitDegraded, errb)
	}
	if !strings.Contains(errb, "degraded") || !strings.Contains(errb, "steps budget exceeded") {
		t.Fatalf("stderr missing degradation notice: %q", errb)
	}
	for _, want := range []string{`"degraded": true`, `"mode": "cfgfree"`} {
		if !strings.Contains(out, want) {
			t.Errorf("-json degraded output missing %s", want)
		}
	}

	// Memory: give the flow-sensitive phases a little headroom over
	// Andersen so the auxiliary phase never trips, then breach on growth.
	memLimit := aBytes + (fBytes-aBytes)/8
	code, out, errb = runCLI(t, "-json", "-max-mem", strconv.FormatInt(memLimit, 10), path)
	if code != exitDegraded {
		t.Fatalf("-max-mem %d exit = %d, want %d (stderr %q)", memLimit, code, exitDegraded, errb)
	}
	if !strings.Contains(errb, "mem budget exceeded") {
		t.Fatalf("stderr missing mem degradation notice: %q", errb)
	}
	if !strings.Contains(out, `"degraded": true`) {
		t.Error("-json mem-degraded output not marked degraded")
	}

	// Generous budgets must not trip: full-precision result, exit 0.
	code, out, _ = runCLI(t, "-max-steps", strconv.FormatInt(1<<40, 10), "-max-mem", strconv.FormatInt(1<<40, 10), "-stats", path)
	if code != exitOK || !strings.Contains(out, "stats: mode=vsfs") {
		t.Fatalf("ample budgets: exit = %d out tail %q", code, out[max(0, len(out)-200):])
	}
}

const uafC = `int main() {
  int *p;
  p = malloc();
  *p = 1;
  free(p);
  *p = 2;
  return 0;
}
`

func TestRunCheckUseAfterFreePositions(t *testing.T) {
	path := writeTemp(t, "uaf.c", uafC)
	code, out, _ := runCLI(t, "-check", path)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d\n%s", code, exitFindings, out)
	}
	want := path + ":6:3: error: "
	if !strings.Contains(out, want) || !strings.Contains(out, "[use-after-free]") {
		t.Errorf("missing positioned use-after-free (%q):\n%s", want, out)
	}
	// The facts must come from the flow-sensitive solver: the same file
	// has no finding at the pre-free write on line 4.
	if strings.Contains(out, ":4:") {
		t.Errorf("pre-free write flagged:\n%s", out)
	}
}

func TestRunCheckSARIF(t *testing.T) {
	path := writeTemp(t, "uaf.c", uafC)
	code, out, _ := runCLI(t, "-check", "-sarif", path)
	if code != exitFindings {
		t.Fatalf("exit = %d, want %d", code, exitFindings)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("SARIF output is not JSON: %v", err)
	}
	if doc["version"] != "2.1.0" {
		t.Errorf("version = %v", doc["version"])
	}
	runs := doc["runs"].([]any)
	results := runs[0].(map[string]any)["results"].([]any)
	foundUAF := false
	for _, ri := range results {
		res := ri.(map[string]any)
		if res["ruleId"] != "use-after-free" {
			continue
		}
		foundUAF = true
		loc := res["locations"].([]any)[0].(map[string]any)
		phys := loc["physicalLocation"].(map[string]any)
		region := phys["region"].(map[string]any)
		if region["startLine"].(float64) != 6 || region["startColumn"].(float64) != 3 {
			t.Errorf("region = %v, want 6:3", region)
		}
		if phys["artifactLocation"].(map[string]any)["uri"] != path {
			t.Errorf("uri = %v", phys)
		}
	}
	if !foundUAF {
		t.Errorf("no use-after-free result in SARIF:\n%s", out)
	}
}

func TestRunCheckSuppressionAndBaseline(t *testing.T) {
	suppressed := `int main() {
  int *p;
  p = malloc();
  free(p);
  *p = 2; // vsfs:ignore(use-after-free)
  return 0;
}
`
	path := writeTemp(t, "supp.c", suppressed)
	code, out, _ := runCLI(t, "-check", path)
	if code != exitOK || !strings.Contains(out, "0 finding(s), 1 suppressed") {
		t.Errorf("suppression: exit = %d out:\n%s", code, out)
	}

	uaf := writeTemp(t, "uaf.c", uafC)
	base := filepath.Join(t.TempDir(), "baseline.json")
	code, _, _ = runCLI(t, "-check", "-write-baseline", base, uaf)
	if code != exitOK {
		t.Fatalf("write-baseline exit = %d", code)
	}
	code, out, _ = runCLI(t, "-check", "-baseline", base, uaf)
	if code != exitOK || !strings.Contains(out, "baselined") {
		t.Errorf("baselined run: exit = %d out:\n%s", code, out)
	}
}

func TestRunCheckSeverityOverride(t *testing.T) {
	path := writeTemp(t, "uaf.c", uafC)
	code, out, _ := runCLI(t, "-check", "-severity", "use-after-free=note", path)
	if code != exitFindings || !strings.Contains(out, ": note: ") {
		t.Errorf("exit = %d out:\n%s", code, out)
	}
	if code, _, _ := runCLI(t, "-check", "-severity", "use-after-free=nope", path); code != exitUsage {
		t.Error("bad severity level should exit 2")
	}
}

func TestRunCheckTaint(t *testing.T) {
	taint := `int *fetch() {
  int *s;
  s = malloc();
  return s;
}
void scrub(int *d) { return; }
void ship(int *d) { return; }
int main() {
  int *x;
  x = fetch();
  ship(x);
  return 0;
}
`
	path := writeTemp(t, "taint.c", taint)
	code, out, _ := runCLI(t, "-check", "-taint-source", "fetch", "-taint-sink", "ship", path)
	if code != exitFindings || !strings.Contains(out, "[leak]") {
		t.Errorf("taint: exit = %d out:\n%s", code, out)
	}
	code, out, _ = runCLI(t, "-check", "-taint-source", "fetch", "-taint-sink", "scrub",
		"-taint-sanitizers", "ship", path)
	if code != exitOK {
		t.Errorf("sanitized-off sink: exit = %d out:\n%s", code, out)
	}
}

func TestRunCheckRespectsMode(t *testing.T) {
	// Flow-insensitively the post-free store is indistinguishable; the
	// Andersen run must report at least as many use-after-free findings
	// as VSFS (here: the pre-free write too).
	path := writeTemp(t, "uaf.c", uafC)
	_, vout, _ := runCLI(t, "-check", path)
	_, aout, _ := runCLI(t, "-check", "-mode", "andersen", path)
	if strings.Count(aout, "[use-after-free]") < strings.Count(vout, "[use-after-free]") {
		t.Errorf("andersen reported fewer UAFs than vsfs:\n--- vsfs ---\n%s--- andersen ---\n%s", vout, aout)
	}
}
