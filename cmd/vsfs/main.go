// Command vsfs analyses a mini-C (.c / .mc) or textual-IR (.vir) file
// and prints the points-to solution, the resolved call graph, and
// analysis statistics.
//
//	vsfs -mode vsfs prog.c         analyse with VSFS (default)
//	vsfs -mode sfs prog.vir        analyse with the SFS baseline
//	vsfs -mode cfgfree prog.c      CFG-free flow-sensitive backend
//	vsfs -mode andersen prog.c     flow-insensitive only
//	vsfs -compare prog.c           run SFS and VSFS, verify equal results
//	vsfs -dump-ir prog.c           print the lowered IR and exit
//	vsfs -dot prog.c               print the SVFG as Graphviz dot
//	vsfs -callgraph prog.c         print the call graph
//	vsfs -check prog.c             run the memory-safety checkers
//	vsfs -check -sarif prog.c      ... emitting SARIF 2.1.0 on stdout
//	vsfs -why p prog.c             explain why p points to what it does
//	vsfs -json prog.c              print the full result as canonical JSON
//	vsfs -timeout 5s prog.c        abort cleanly if analysis exceeds 5s
//	vsfs -max-steps 1e6 prog.c     degrade down the ladder past a step budget
//	vsfs -max-mem 64e6 prog.c      degrade down the ladder past a memory budget
//	vsfs -trace out.json prog.c    write a Chrome trace of the pipeline phases
//	vsfs -attr prog.c              attribute solver cost to abstract objects
//	vsfs -ledger runs.jsonl prog.c append a run record to a persistent ledger
//	vsfs -version                  print version and exit
//	vsfs -v prog.c                 log analysis progress to stderr
//
// The checker suite (-check) runs null-deref, dangling-return,
// stack-escape, use-after-free, double-free and memory-leak over the
// facts of the selected -mode (VSFS by default), and the taint checker
// when -taint-source and -taint-sink name functions. Findings print as
// "file:line:col: severity: message [kind]" or, with -sarif, as a
// SARIF 2.1.0 log. "// vsfs:ignore(kind)" comments suppress findings
// on their line; -baseline hides findings recorded with
// -write-baseline; -severity overrides per-kind severities.
//
// Exit codes: 0 success; 1 analysis error; 2 usage error; 3 success
// with a degraded result (the CFG-free rung or the flow-insensitive
// floor) after exceeding -max-steps/-max-mem; 4 timed out (-timeout);
// 5 findings reported by -check (takes precedence over 3).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strings"
	"time"

	"vsfs"
	"vsfs/internal/andersen"
	"vsfs/internal/core"
	"vsfs/internal/diag"
	"vsfs/internal/guard"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/lang"
	"vsfs/internal/memssa"
	"vsfs/internal/obs"
	"vsfs/internal/svfg"
)

// Exit codes; part of the CLI contract (see the package comment).
const (
	exitOK       = 0 // full-precision success
	exitError    = 1 // analysis error
	exitUsage    = 2 // bad flags or arguments
	exitDegraded = 3 // success, but degraded down the backend ladder
	exitTimeout  = 4 // -timeout elapsed before the analysis finished
	exitFindings = 5 // -check reported at least one finding
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, performs the
// requested action, writes to the given streams and returns the exit
// code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vsfs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "vsfs", "analysis: vsfs, sfs, cfgfree, or andersen")
	compare := fs.Bool("compare", false, "run SFS and VSFS and verify identical results")
	dumpIR := fs.Bool("dump-ir", false, "print the lowered IR and exit")
	dot := fs.Bool("dot", false, "print the SVFG in Graphviz dot format and exit")
	callgraph := fs.Bool("callgraph", false, "print the resolved call graph")
	stats := fs.Bool("stats", false, "print analysis statistics")
	check := fs.Bool("check", false, "run the memory-safety checkers (null-deref, dangling-return, stack-escape, use-after-free, double-free, memory-leak)")
	sarif := fs.Bool("sarif", false, "with -check: print findings as SARIF 2.1.0 instead of text")
	baselinePath := fs.String("baseline", "", "with -check: hide findings recorded in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "with -check: record current findings to this baseline file and exit")
	severityFlag := fs.String("severity", "", "with -check: per-kind severity overrides, e.g. null-deref=error,memory-leak=note")
	taintSource := fs.String("taint-source", "", "with -check: treat objects allocated in this function as sensitive")
	taintSink := fs.String("taint-sink", "", "with -check: report sensitive objects reaching arguments of this function")
	taintSanitizers := fs.String("taint-sanitizers", "", "with -check: comma-separated functions whose call arguments are declassified")
	why := fs.String("why", "", "explain a points-to fact: print value-flow witnesses for every object the named variable may reference (name or func.name)")
	jsonOut := fs.Bool("json", false, "print the full result (points-to, call graph, findings, stats) as canonical JSON")
	timeout := fs.Duration("timeout", 0, "abort analysis after this long, exiting 4 (0 = no limit)")
	maxSteps := fs.Int64("max-steps", 0, "worklist-step budget; past it the run degrades to the flow-insensitive result and exits 3 (0 = no limit)")
	maxMem := fs.Int64("max-mem", 0, "points-to storage budget in bytes; past it the run degrades and exits 3 (0 = no limit)")
	traceOut := fs.String("trace", "", "write the pipeline phases as Chrome trace_event JSON to this file (open in Perfetto)")
	attr := fs.Bool("attr", false, "attribute solver cost (pops, propagations, sets, melds) to abstract objects and print the hot-object table")
	parallel := fs.Int("parallel", 0, "solve with the sharded parallel VSFS engine at this worker count (<2 = sequential; results are byte-identical)")
	attrTop := fs.Int("attr-top", 10, "with -attr: number of hot objects to print")
	ledgerPath := fs.String("ledger", "", "append a run record (shape, backend, timings, budget spend, findings) to this JSONL ledger")
	version := fs.Bool("version", false, "print version and exit")
	verbose := fs.Bool("v", false, "log analysis progress to stderr")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if *version {
		fmt.Fprintf(stdout, "vsfs %s %s\n", obs.Version, obs.GoVersion())
		return exitOK
	}

	logger := obs.Discard()
	if *verbose {
		logger, _ = obs.NewLogger(stderr, "text", slog.LevelDebug)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx = guard.WithBudget(ctx, guard.NewBudget(*maxSteps, *maxMem, 0))

	if *traceOut != "" {
		tr := obs.NewTrace()
		ctx = obs.NewContext(ctx, tr)
		// The trace is written on every exit path — a timed-out run still
		// leaves the spans that completed.
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(stderr, "vsfs: trace:", err)
				return
			}
			defer f.Close()
			if err := tr.WriteJSON(f); err != nil {
				fmt.Fprintln(stderr, "vsfs: trace:", err)
				return
			}
			logger.Info("trace written", "file", *traceOut, "spans", len(tr.Events()))
		}()
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: vsfs [flags] <file.c|file.vir>")
		fmt.Fprintln(stderr, "exit codes: 0 ok, 1 error, 2 usage, 3 degraded result, 4 timeout, 5 findings")
		fs.PrintDefaults()
		return exitUsage
	}
	fail := func(err error) int {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(stderr, "vsfs: analysis timed out (-timeout %v)\n", *timeout)
			return exitTimeout
		}
		fmt.Fprintln(stderr, "vsfs:", err)
		return exitError
	}
	// appendLedger records the run in the persistent ledger; a ledger
	// failure is reported but never changes the exit code — telemetry
	// must not break the analysis contract.
	appendLedger := func(r *vsfs.Result, findings int) {
		if *ledgerPath == "" {
			return
		}
		led, lerr := obs.OpenLedger(*ledgerPath, 0)
		if lerr != nil {
			fmt.Fprintln(stderr, "vsfs: ledger:", lerr)
			return
		}
		defer led.Close()
		if lerr := led.Append(r.RunRecord(time.Now(), findings)); lerr != nil {
			fmt.Fprintln(stderr, "vsfs: ledger:", lerr)
		}
	}
	// exit folds degradation into a success path's code and tells the
	// user on stderr (stdout stays the machine-readable result).
	exit := func(results ...*vsfs.Result) int {
		for _, r := range results {
			if r.Degraded() {
				fmt.Fprintln(stderr, "vsfs: degraded:", r.Degradation())
				return exitDegraded
			}
		}
		return exitOK
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		return fail(err)
	}
	isIR := strings.HasSuffix(path, ".vir")

	if *dot {
		var prog *ir.Program
		var perr error
		if isIR {
			prog, perr = irparse.Parse(string(src))
		} else {
			prog, perr = lang.Compile(string(src))
		}
		if perr != nil {
			return fail(perr)
		}
		aux, aerr := andersen.AnalyzeContext(ctx, prog)
		if aerr != nil {
			return fail(aerr)
		}
		mssa, merr := memssa.BuildContext(ctx, prog, aux)
		if merr != nil {
			return fail(merr)
		}
		g, gerr := svfg.BuildContext(ctx, prog, aux, mssa)
		if gerr != nil {
			return fail(gerr)
		}
		if err := g.WriteDot(stdout); err != nil {
			return fail(err)
		}
		return exitOK
	}

	if *dumpIR {
		if isIR {
			prog, err := irparse.Parse(string(src))
			if err != nil {
				return fail(err)
			}
			fmt.Fprint(stdout, prog.String())
			return 0
		}
		prog, err := lang.Compile(string(src))
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, prog.String())
		return 0
	}

	analyze := func(m vsfs.Mode) (*vsfs.Result, error) {
		input := vsfs.InputC
		if isIR {
			input = vsfs.InputIR
		}
		logger.Info("analyzing", "file", path, "mode", m.String(), "bytes", len(src))
		r, err := vsfs.AnalyzeContext(ctx, string(src), vsfs.Options{Mode: m, Input: input, Filename: path, Attr: *attr, Parallel: *parallel})
		if err == nil {
			t := r.Timings()
			logger.Info("analysis complete", "total", t.Total,
				"andersen", t.Andersen, "memssa", t.MemSSA, "svfg", t.SVFG, "solve", t.Solve)
		}
		return r, err
	}

	if *why != "" {
		var prog *ir.Program
		var perr error
		if isIR {
			prog, perr = irparse.Parse(string(src))
		} else {
			prog, perr = lang.Compile(string(src))
		}
		if perr != nil {
			return fail(perr)
		}
		aux, aerr := andersen.AnalyzeContext(ctx, prog)
		if aerr != nil {
			return fail(aerr)
		}
		mssa, merr := memssa.BuildContext(ctx, prog, aux)
		if merr != nil {
			return fail(merr)
		}
		g, gerr := svfg.BuildContext(ctx, prog, aux, mssa)
		if gerr != nil {
			return fail(gerr)
		}
		solved, serr := core.SolveContext(ctx, g)
		if serr != nil {
			return fail(serr)
		}
		holds := func(x, o ir.ID) bool {
			if prog.IsPointer(x) {
				return solved.PointsTo(x).Has(uint32(o))
			}
			return solved.ObjectSummary(x).Has(uint32(o))
		}
		// Match variables by exact name or by suffix after a function
		// qualifier, covering both IR names and lowered temps.
		name := *why
		if i := strings.IndexByte(name, '.'); i > 0 {
			name = name[i+1:]
		}
		found := 0
		for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
			if !prog.IsPointer(v) {
				continue
			}
			n := prog.Value(v).Name
			if n != *why && n != name && !strings.HasPrefix(n, name+".") {
				continue
			}
			if strings.Contains(n, ".addr") {
				continue
			}
			solved.PointsTo(v).ForEach(func(o uint32) {
				if w := g.ExplainPointsTo(holds, v, ir.ID(o)); w != nil {
					found++
					fmt.Fprint(stdout, w.Format(prog))
				}
			})
		}
		if found == 0 {
			fmt.Fprintf(stdout, "no points-to facts found for %q\n", *why)
		}
		return 0
	}

	if *compare {
		rs, err := analyze(vsfs.SFS)
		if err != nil {
			return fail(err)
		}
		rv, err := analyze(vsfs.VSFS)
		if err != nil {
			return fail(err)
		}
		stripHeader := func(s string) string {
			if i := strings.IndexByte(s, '\n'); i >= 0 {
				return s[i+1:]
			}
			return s
		}
		if stripHeader(rs.Dump()) != stripHeader(rv.Dump()) {
			fmt.Fprintln(stderr, "MISMATCH: SFS and VSFS disagree")
			fmt.Fprintln(stderr, "--- SFS ---\n"+rs.Dump())
			fmt.Fprintln(stderr, "--- VSFS ---\n"+rv.Dump())
			return 1
		}
		fmt.Fprintln(stdout, "SFS ≡ VSFS: identical points-to solutions")
		fmt.Fprint(stdout, rv.Dump())
		return exit(rs, rv)
	}

	m, err := vsfs.ParseMode(*mode)
	if err != nil {
		return fail(err)
	}

	if *check || *sarif {
		severities, serr := parseSeverities(*severityFlag)
		if serr != nil {
			fmt.Fprintln(stderr, "vsfs:", serr)
			return exitUsage
		}
		r, err := analyze(m)
		if err != nil {
			return fail(err)
		}
		cfg := vsfs.CheckConfig{TaintSource: *taintSource, TaintSink: *taintSink}
		if *taintSanitizers != "" {
			cfg.TaintSanitizers = strings.Split(*taintSanitizers, ",")
		}
		raw := r.CheckWith(cfg)
		appendLedger(r, len(raw))
		return runCheck(r, string(src), path, checkOpts{
			sarif:         *sarif,
			baseline:      *baselinePath,
			writeBaseline: *writeBaseline,
			severities:    severities,
			cfg:           cfg,
			raw:           raw,
		}, stdout, stderr)
	}

	r, err := analyze(m)
	if err != nil {
		return fail(err)
	}

	if *jsonOut {
		rep := r.Report()
		if *attr {
			// The CLI honors -attr-top in JSON too; the embedded table
			// defaults to the report's own top-K.
			rep.HotObjects = r.HotObjects(*attrTop)
		}
		data, merr := rep.MarshalIndent()
		if merr != nil {
			return fail(merr)
		}
		stdout.Write(append(data, '\n'))
		appendLedger(r, len(rep.Findings))
		return exit(r)
	}
	fmt.Fprint(stdout, r.Dump())
	if *attr {
		fmt.Fprintln(stdout, "\nhot objects (by attributed solver cost):")
		fmt.Fprintf(stdout, "  %-24s %12s %10s %8s %8s\n", "object", "props", "pops", "sets", "melds")
		for _, h := range r.HotObjects(*attrTop) {
			fmt.Fprintf(stdout, "  %-24s %12d %10d %8d %8d\n", h.Object, h.Propagations, h.Pops, h.Sets, h.Melds)
		}
	}
	if *ledgerPath != "" {
		appendLedger(r, len(r.Check()))
	}

	if *callgraph {
		cg := r.CallGraph()
		fns := make([]string, 0, len(cg))
		for fn := range cg {
			fns = append(fns, fn)
		}
		sort.Strings(fns)
		fmt.Fprintln(stdout, "\ncall graph:")
		for _, fn := range fns {
			fmt.Fprintf(stdout, "  %s → %s\n", fn, strings.Join(cg[fn], ", "))
		}
	}
	if *stats {
		s := r.Stats()
		fmt.Fprintf(stdout, "\nstats: mode=%s funcs=%d nodes=%d dEdges=%d iEdges=%d topLevel=%d addrTaken=%d\n",
			s.Mode, s.Functions, s.SVFGNodes, s.DirectEdges, s.IndirectEdges, s.TopLevelVars, s.AddressTaken)
		if s.Mode != "andersen" {
			fmt.Fprintf(stdout, "       processed=%d propagations=%d ptsSets=%d\n",
				s.NodesProcessed, s.Propagations, s.PtsSets)
		}
		if s.Mode == "vsfs" {
			fmt.Fprintf(stdout, "       prelabels=%d distinctVersions=%d\n", s.Prelabels, s.DistinctVersions)
		}
		if ps := r.Parallelism(); ps != nil {
			fmt.Fprintf(stdout, "       parallel: workers=%d steals=%d imbalance=%.2f\n",
				ps.Workers, ps.Steals, ps.ImbalanceRatio)
		}
	}
	return exit(r)
}

// checkOpts carries the -check presentation knobs into runCheck.
type checkOpts struct {
	sarif         bool
	baseline      string
	writeBaseline string
	severities    map[string]diag.Severity
	cfg           vsfs.CheckConfig
	// raw is the precomputed checker output; runCheck computes it from
	// cfg when nil (the ledger path needs the count, so the caller may
	// have it already).
	raw []vsfs.Finding
}

// parseSeverities parses "kind=level,kind=level" severity overrides.
func parseSeverities(s string) (map[string]diag.Severity, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]diag.Severity{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" {
			return nil, fmt.Errorf("bad -severity entry %q (want kind=level)", part)
		}
		switch lvl := diag.Severity(kv[1]); lvl {
		case diag.Error, diag.Warning, diag.Note:
			out[kv[0]] = lvl
		default:
			return nil, fmt.Errorf("bad severity %q (want error, warning or note)", kv[1])
		}
	}
	return out, nil
}

// runCheck turns the analysis result into rendered diagnostics: convert
// checker findings through the diag engine (severities, fingerprints),
// apply inline suppressions and the baseline, then render text or
// SARIF. Findings exit 5; a degraded run without findings exits 3.
func runCheck(r *vsfs.Result, src, path string, o checkOpts, stdout, stderr io.Writer) int {
	raw := o.raw
	if raw == nil {
		raw = r.CheckWith(o.cfg)
	}
	rawd := make([]diag.Raw, len(raw))
	for i, f := range raw {
		rawd[i] = diag.Raw{Kind: f.Kind, Func: f.Func, Label: f.Label, Line: f.Line, Col: f.Col, Message: f.Message}
	}
	findings := diag.New(path, rawd, o.severities)
	findings, suppressed := diag.Suppress(src, findings)

	baselined := 0
	if o.baseline != "" {
		bf, err := os.Open(o.baseline)
		if err != nil {
			fmt.Fprintln(stderr, "vsfs:", err)
			return exitError
		}
		b, err := diag.ReadBaseline(bf)
		bf.Close()
		if err != nil {
			fmt.Fprintln(stderr, "vsfs:", err)
			return exitError
		}
		findings, baselined = b.Filter(findings)
	}

	if r.Degraded() {
		fmt.Fprintln(stderr, "vsfs: degraded:", r.Degradation())
	}

	if o.writeBaseline != "" {
		f, err := os.Create(o.writeBaseline)
		if err != nil {
			fmt.Fprintln(stderr, "vsfs:", err)
			return exitError
		}
		werr := diag.NewBaseline(findings).Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "vsfs:", werr)
			return exitError
		}
		fmt.Fprintf(stdout, "baseline with %d finding(s) written to %s\n", len(findings), o.writeBaseline)
		if r.Degraded() {
			return exitDegraded
		}
		return exitOK
	}

	if o.sarif {
		if err := diag.WriteSARIF(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "vsfs:", err)
			return exitError
		}
	} else {
		diag.RenderText(stdout, findings)
		fmt.Fprintf(stdout, "%d finding(s)", len(findings))
		if suppressed > 0 {
			fmt.Fprintf(stdout, ", %d suppressed", suppressed)
		}
		if baselined > 0 {
			fmt.Fprintf(stdout, ", %d baselined", baselined)
		}
		fmt.Fprintln(stdout)
	}
	switch {
	case len(findings) > 0:
		return exitFindings
	case r.Degraded():
		return exitDegraded
	}
	return exitOK
}
