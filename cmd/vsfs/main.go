// Command vsfs analyses a mini-C (.c / .mc) or textual-IR (.vir) file
// and prints the points-to solution, the resolved call graph, and
// analysis statistics.
//
//	vsfs -mode vsfs prog.c         analyse with VSFS (default)
//	vsfs -mode sfs prog.vir        analyse with the SFS baseline
//	vsfs -mode andersen prog.c     flow-insensitive only
//	vsfs -compare prog.c           run SFS and VSFS, verify equal results
//	vsfs -dump-ir prog.c           print the lowered IR and exit
//	vsfs -dot prog.c               print the SVFG as Graphviz dot
//	vsfs -callgraph prog.c         print the call graph
//	vsfs -check prog.c             run the bug-finding clients
//	vsfs -why p prog.c             explain why p points to what it does
//	vsfs -json prog.c              print the full result as canonical JSON
//	vsfs -timeout 5s prog.c        abort cleanly if analysis exceeds 5s
//	vsfs -max-steps 1e6 prog.c     degrade to Andersen past a step budget
//	vsfs -max-mem 64e6 prog.c      degrade to Andersen past a memory budget
//	vsfs -trace out.json prog.c    write a Chrome trace of the pipeline phases
//	vsfs -v prog.c                 log analysis progress to stderr
//
// Exit codes: 0 success; 1 analysis error (or findings with -check);
// 2 usage error; 3 success with a degraded (flow-insensitive) result
// after exceeding -max-steps/-max-mem; 4 timed out (-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sort"
	"strings"

	"vsfs"
	"vsfs/internal/andersen"
	"vsfs/internal/checker"
	"vsfs/internal/core"
	"vsfs/internal/guard"
	"vsfs/internal/ir"
	"vsfs/internal/irparse"
	"vsfs/internal/lang"
	"vsfs/internal/memssa"
	"vsfs/internal/obs"
	"vsfs/internal/svfg"
)

// Exit codes; part of the CLI contract (see the package comment).
const (
	exitOK       = 0 // full-precision success
	exitError    = 1 // analysis error, or findings under -check
	exitUsage    = 2 // bad flags or arguments
	exitDegraded = 3 // success, but degraded to the flow-insensitive result
	exitTimeout  = 4 // -timeout elapsed before the analysis finished
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, performs the
// requested action, writes to the given streams and returns the exit
// code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vsfs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	mode := fs.String("mode", "vsfs", "analysis: vsfs, sfs, or andersen")
	compare := fs.Bool("compare", false, "run SFS and VSFS and verify identical results")
	dumpIR := fs.Bool("dump-ir", false, "print the lowered IR and exit")
	dot := fs.Bool("dot", false, "print the SVFG in Graphviz dot format and exit")
	callgraph := fs.Bool("callgraph", false, "print the resolved call graph")
	stats := fs.Bool("stats", false, "print analysis statistics")
	check := fs.Bool("check", false, "run the bug-finding clients (null-deref, dangling returns, stack escapes)")
	why := fs.String("why", "", "explain a points-to fact: print value-flow witnesses for every object the named variable may reference (name or func.name)")
	jsonOut := fs.Bool("json", false, "print the full result (points-to, call graph, findings, stats) as canonical JSON")
	timeout := fs.Duration("timeout", 0, "abort analysis after this long, exiting 4 (0 = no limit)")
	maxSteps := fs.Int64("max-steps", 0, "worklist-step budget; past it the run degrades to the flow-insensitive result and exits 3 (0 = no limit)")
	maxMem := fs.Int64("max-mem", 0, "points-to storage budget in bytes; past it the run degrades and exits 3 (0 = no limit)")
	traceOut := fs.String("trace", "", "write the pipeline phases as Chrome trace_event JSON to this file (open in Perfetto)")
	verbose := fs.Bool("v", false, "log analysis progress to stderr")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	logger := obs.Discard()
	if *verbose {
		logger, _ = obs.NewLogger(stderr, "text", slog.LevelDebug)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx = guard.WithBudget(ctx, guard.NewBudget(*maxSteps, *maxMem, 0))

	if *traceOut != "" {
		tr := obs.NewTrace()
		ctx = obs.NewContext(ctx, tr)
		// The trace is written on every exit path — a timed-out run still
		// leaves the spans that completed.
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(stderr, "vsfs: trace:", err)
				return
			}
			defer f.Close()
			if err := tr.WriteJSON(f); err != nil {
				fmt.Fprintln(stderr, "vsfs: trace:", err)
				return
			}
			logger.Info("trace written", "file", *traceOut, "spans", len(tr.Events()))
		}()
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: vsfs [flags] <file.c|file.vir>")
		fmt.Fprintln(stderr, "exit codes: 0 ok, 1 error/findings, 2 usage, 3 degraded result, 4 timeout")
		fs.PrintDefaults()
		return exitUsage
	}
	fail := func(err error) int {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(stderr, "vsfs: analysis timed out (-timeout %v)\n", *timeout)
			return exitTimeout
		}
		fmt.Fprintln(stderr, "vsfs:", err)
		return exitError
	}
	// exit folds degradation into a success path's code and tells the
	// user on stderr (stdout stays the machine-readable result).
	exit := func(results ...*vsfs.Result) int {
		for _, r := range results {
			if r.Degraded() {
				fmt.Fprintln(stderr, "vsfs: degraded:", r.Degradation())
				return exitDegraded
			}
		}
		return exitOK
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		return fail(err)
	}
	isIR := strings.HasSuffix(path, ".vir")

	if *dot {
		var prog *ir.Program
		var perr error
		if isIR {
			prog, perr = irparse.Parse(string(src))
		} else {
			prog, perr = lang.Compile(string(src))
		}
		if perr != nil {
			return fail(perr)
		}
		aux, aerr := andersen.AnalyzeContext(ctx, prog)
		if aerr != nil {
			return fail(aerr)
		}
		mssa, merr := memssa.BuildContext(ctx, prog, aux)
		if merr != nil {
			return fail(merr)
		}
		g, gerr := svfg.BuildContext(ctx, prog, aux, mssa)
		if gerr != nil {
			return fail(gerr)
		}
		if err := g.WriteDot(stdout); err != nil {
			return fail(err)
		}
		return exitOK
	}

	if *dumpIR {
		if isIR {
			prog, err := irparse.Parse(string(src))
			if err != nil {
				return fail(err)
			}
			fmt.Fprint(stdout, prog.String())
			return 0
		}
		prog, err := lang.Compile(string(src))
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, prog.String())
		return 0
	}

	analyze := func(m vsfs.Mode) (*vsfs.Result, error) {
		input := vsfs.InputC
		if isIR {
			input = vsfs.InputIR
		}
		logger.Info("analyzing", "file", path, "mode", m.String(), "bytes", len(src))
		r, err := vsfs.AnalyzeContext(ctx, string(src), vsfs.Options{Mode: m, Input: input})
		if err == nil {
			t := r.Timings()
			logger.Info("analysis complete", "total", t.Total,
				"andersen", t.Andersen, "memssa", t.MemSSA, "svfg", t.SVFG, "solve", t.Solve)
		}
		return r, err
	}

	if *check {
		var prog *ir.Program
		var perr error
		if isIR {
			prog, perr = irparse.Parse(string(src))
		} else {
			prog, perr = lang.Compile(string(src))
		}
		if perr != nil {
			return fail(perr)
		}
		aux, aerr := andersen.AnalyzeContext(ctx, prog)
		if aerr != nil {
			return fail(aerr)
		}
		mssa, merr := memssa.BuildContext(ctx, prog, aux)
		if merr != nil {
			return fail(merr)
		}
		g, gerr := svfg.BuildContext(ctx, prog, aux, mssa)
		if gerr != nil {
			return fail(gerr)
		}
		solved, serr := core.SolveContext(ctx, g)
		if serr != nil {
			return fail(serr)
		}
		var all []checker.Finding
		all = append(all, checker.NullDerefs(prog, solved)...)
		all = append(all, checker.DanglingReturns(prog, solved)...)
		all = append(all, checker.StackEscapes(prog, solved)...)
		for _, f := range all {
			fmt.Fprintln(stdout, f)
		}
		fmt.Fprintf(stdout, "%d finding(s)\n", len(all))
		if len(all) > 0 {
			return exitError
		}
		return exitOK
	}

	if *why != "" {
		var prog *ir.Program
		var perr error
		if isIR {
			prog, perr = irparse.Parse(string(src))
		} else {
			prog, perr = lang.Compile(string(src))
		}
		if perr != nil {
			return fail(perr)
		}
		aux, aerr := andersen.AnalyzeContext(ctx, prog)
		if aerr != nil {
			return fail(aerr)
		}
		mssa, merr := memssa.BuildContext(ctx, prog, aux)
		if merr != nil {
			return fail(merr)
		}
		g, gerr := svfg.BuildContext(ctx, prog, aux, mssa)
		if gerr != nil {
			return fail(gerr)
		}
		solved, serr := core.SolveContext(ctx, g)
		if serr != nil {
			return fail(serr)
		}
		holds := func(x, o ir.ID) bool {
			if prog.IsPointer(x) {
				return solved.PointsTo(x).Has(uint32(o))
			}
			return solved.ObjectSummary(x).Has(uint32(o))
		}
		// Match variables by exact name or by suffix after a function
		// qualifier, covering both IR names and lowered temps.
		name := *why
		if i := strings.IndexByte(name, '.'); i > 0 {
			name = name[i+1:]
		}
		found := 0
		for v := ir.ID(1); int(v) < prog.NumValues(); v++ {
			if !prog.IsPointer(v) {
				continue
			}
			n := prog.Value(v).Name
			if n != *why && n != name && !strings.HasPrefix(n, name+".") {
				continue
			}
			if strings.Contains(n, ".addr") {
				continue
			}
			solved.PointsTo(v).ForEach(func(o uint32) {
				if w := g.ExplainPointsTo(holds, v, ir.ID(o)); w != nil {
					found++
					fmt.Fprint(stdout, w.Format(prog))
				}
			})
		}
		if found == 0 {
			fmt.Fprintf(stdout, "no points-to facts found for %q\n", *why)
		}
		return 0
	}

	if *compare {
		rs, err := analyze(vsfs.SFS)
		if err != nil {
			return fail(err)
		}
		rv, err := analyze(vsfs.VSFS)
		if err != nil {
			return fail(err)
		}
		stripHeader := func(s string) string {
			if i := strings.IndexByte(s, '\n'); i >= 0 {
				return s[i+1:]
			}
			return s
		}
		if stripHeader(rs.Dump()) != stripHeader(rv.Dump()) {
			fmt.Fprintln(stderr, "MISMATCH: SFS and VSFS disagree")
			fmt.Fprintln(stderr, "--- SFS ---\n"+rs.Dump())
			fmt.Fprintln(stderr, "--- VSFS ---\n"+rv.Dump())
			return 1
		}
		fmt.Fprintln(stdout, "SFS ≡ VSFS: identical points-to solutions")
		fmt.Fprint(stdout, rv.Dump())
		return exit(rs, rv)
	}

	m, err := vsfs.ParseMode(*mode)
	if err != nil {
		return fail(err)
	}
	r, err := analyze(m)
	if err != nil {
		return fail(err)
	}

	if *jsonOut {
		data, merr := r.Report().MarshalIndent()
		if merr != nil {
			return fail(merr)
		}
		stdout.Write(append(data, '\n'))
		return exit(r)
	}
	fmt.Fprint(stdout, r.Dump())

	if *callgraph {
		cg := r.CallGraph()
		fns := make([]string, 0, len(cg))
		for fn := range cg {
			fns = append(fns, fn)
		}
		sort.Strings(fns)
		fmt.Fprintln(stdout, "\ncall graph:")
		for _, fn := range fns {
			fmt.Fprintf(stdout, "  %s → %s\n", fn, strings.Join(cg[fn], ", "))
		}
	}
	if *stats {
		s := r.Stats()
		fmt.Fprintf(stdout, "\nstats: mode=%s funcs=%d nodes=%d dEdges=%d iEdges=%d topLevel=%d addrTaken=%d\n",
			s.Mode, s.Functions, s.SVFGNodes, s.DirectEdges, s.IndirectEdges, s.TopLevelVars, s.AddressTaken)
		if s.Mode != "andersen" {
			fmt.Fprintf(stdout, "       processed=%d propagations=%d ptsSets=%d\n",
				s.NodesProcessed, s.Propagations, s.PtsSets)
		}
		if s.Mode == "vsfs" {
			fmt.Fprintf(stdout, "       prelabels=%d distinctVersions=%d\n", s.Prelabels, s.DistinctVersions)
		}
	}
	return exit(r)
}
