package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// traceFile mirrors the Chrome trace_event object format the -trace
// flag writes.
type traceFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args,omitempty"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestTraceFlagCoversPipelinePhases(t *testing.T) {
	src := writeTemp(t, "p.c", okC)
	out := filepath.Join(t.TempDir(), "trace.json")
	code, _, errb := runCLI(t, "-trace", out, src)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errb)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := map[string][2]float64{}
	for _, e := range tf.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete events (X)", e.Name, e.Ph)
		}
		spans[e.Name] = [2]float64{e.Ts, e.Ts + e.Dur}
	}
	for _, want := range []string{"parse", "andersen", "memssa", "svfg", "solve", "meld", "main"} {
		if _, ok := spans[want]; !ok {
			t.Errorf("trace missing span %q (got %v)", want, spans)
		}
	}
	// The versioning and main phases must nest inside the solve span.
	solve := spans["solve"]
	for _, inner := range []string{"meld", "main"} {
		s := spans[inner]
		if s[0] < solve[0] || s[1] > solve[1] {
			t.Errorf("span %q [%v,%v] not contained in solve [%v,%v]",
				inner, s[0], s[1], solve[0], solve[1])
		}
	}
}

func TestVerboseFlagLogsProgress(t *testing.T) {
	src := writeTemp(t, "p.c", okC)
	code, _, errb := runCLI(t, "-v", src)
	if code != 0 {
		t.Fatalf("exit = %d: %s", code, errb)
	}
	for _, want := range []string{"analyzing", "analysis complete"} {
		if !strings.Contains(errb, want) {
			t.Errorf("verbose log missing %q:\n%s", want, errb)
		}
	}
}
