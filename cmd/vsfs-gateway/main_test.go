package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vsfs/internal/server"
)

// TestGatewayEndToEnd boots two real replicas and the gateway binary's
// run() on an ephemeral port, proxies an analyze through it, checks the
// operational surfaces, and shuts down via context cancellation (the
// SIGTERM path).
func TestGatewayEndToEnd(t *testing.T) {
	newReplica := func() (*httptest.Server, *server.Server) {
		svc := server.New(server.Config{Workers: 2})
		return httptest.NewServer(svc), svc
	}
	ts1, svc1 := newReplica()
	ts2, svc2 := newReplica()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ts1.Close()
		ts2.Close()
		svc1.Close(ctx)
		svc2.Close(ctx)
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	var out, errb strings.Builder
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{
			"-addr", "127.0.0.1:0",
			"-replicas", ts1.URL + "," + ts2.URL,
			"-hedge-after", "-1ms",
			"-log-format", "off",
		}, ctx, ready, &out, &errb)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("gateway did not become ready")
	}
	base := "http://" + addr

	getBody := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := getBody("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %s", code, body)
	}
	if code, body := getBody("/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz: %d %s", code, body)
	}

	// The proxied answer must match a direct replica solve byte for
	// byte; determinism makes any replica's answer canonical.
	payload := `{"source":"int main() { int a; int *p; p = &a; return 0; }"}`
	resp, err := http.Post(base+"/analyze", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	viaGateway, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/analyze via gateway: %d %s", resp.StatusCode, viaGateway)
	}
	if resp.Header.Get("X-Vsfs-Replica") == "" || resp.Header.Get("X-Vsfs-Gateway-Attempts") != "1" {
		t.Fatalf("routing annotations missing: replica %q attempts %q",
			resp.Header.Get("X-Vsfs-Replica"), resp.Header.Get("X-Vsfs-Gateway-Attempts"))
	}

	direct, err := http.Post(ts1.URL+"/analyze", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	directBody, _ := io.ReadAll(direct.Body)
	direct.Body.Close()
	if !bytes.Equal(viaGateway, directBody) {
		t.Fatalf("gateway answer differs from direct solve:\n gateway: %.200s\n direct:  %.200s", viaGateway, directBody)
	}

	if code, body := getBody("/stats"); code != 200 || !strings.Contains(body, `"replicas"`) {
		t.Fatalf("/stats: %d %s", code, body)
	}
	if code, body := getBody("/metrics"); code != 200 || !strings.Contains(body, "vsfs_gateway_requests_total") {
		t.Fatalf("/metrics: %d %.200s", code, body)
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit = %d; stderr: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("gateway did not drain and exit")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing shutdown log; stdout: %s", out.String())
	}
}

func TestGatewayUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                      // -replicas required
		{"-replicas", ""},       // empty
		{"-bogus-flag"},         // unknown flag
		{"-replicas", "x", "y"}, // stray positional arg
	}
	for _, args := range cases {
		var out, errb strings.Builder
		if code := run(args, context.Background(), nil, &out, &errb); code != 2 {
			t.Errorf("run(%q) = %d, want 2", fmt.Sprint(args), code)
		}
	}
}
