// Command vsfs-gateway fronts a fleet of vsfs-serve replicas with a
// fault-tolerant routing tier: consistent-hash placement on the content
// hash (with bounded load), active /readyz health checking with
// ejection and readmission, retries with jittered exponential backoff
// under a per-request budget, tail-latency hedging, and failover to the
// next ring replica on connect errors, timeouts, and 5xx.
//
//	vsfs-gateway -replicas http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
//
//	curl localhost:8081/healthz
//	curl localhost:8081/readyz
//	curl localhost:8081/stats
//	curl localhost:8081/metrics
//	curl -d '{"source":"int main(){return 0;}"}' localhost:8081/analyze
//
// Because every replica's responses are content-addressed and
// deterministic, retries, failover, and hedging can never change an
// answer — only who computes it. The oracle's gateway-eq-direct
// invariant holds the gateway to exactly that.
//
// The process exits cleanly on SIGINT/SIGTERM: /readyz flips to 503
// immediately (so load balancers stop sending work) and in-flight
// proxied requests drain for up to -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vsfs/internal/cluster"
	"vsfs/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], context.Background(), nil, os.Stdout, os.Stderr))
}

// run is the testable entry point, mirroring vsfs-serve: if ready is
// non-nil it receives the bound address once the listener is up.
func run(args []string, ctx context.Context, ready chan<- string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vsfs-gateway", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8081", "listen address")
	replicas := fs.String("replicas", "", "comma-separated vsfs-serve base URLs (required)")
	vnodes := fs.Int("vnodes", cluster.DefaultVirtualNodes, "virtual nodes per replica on the hash ring")
	loadFactor := fs.Float64("load-factor", cluster.DefaultLoadFactor, "bounded-load constant c (>1); a replica holding more than ceil(c*mean) in-flight requests spills to the next")
	attempts := fs.Int("attempts", cluster.DefaultMaxAttempts, "per-request upstream attempt budget (first try + retries + hedges)")
	retryBase := fs.Duration("retry-base", cluster.DefaultRetryBase, "base retry backoff (full jitter, doubling per round)")
	retryCap := fs.Duration("retry-cap", cluster.DefaultRetryCap, "retry backoff ceiling; also caps an upstream Retry-After")
	attemptTimeout := fs.Duration("attempt-timeout", cluster.DefaultAttemptTimeout, "wall-clock cap per upstream attempt")
	hedgeAfter := fs.Duration("hedge-after", 0, "launch a hedge at the next replica after this long (0 = adapt to -hedge-quantile of recent latency, <0 = disable hedging)")
	hedgeQuantile := fs.Float64("hedge-quantile", cluster.DefaultHedgeQuantile, "latency quantile driving the adaptive hedge threshold")
	probeInterval := fs.Duration("probe-interval", cluster.DefaultProbeInterval, "readiness probe period")
	probeTimeout := fs.Duration("probe-timeout", cluster.DefaultProbeTimeout, "readiness probe timeout")
	ejectAfter := fs.Int("eject-after", cluster.DefaultEjectAfter, "consecutive failed probes before a replica is ejected from the ring")
	readmitAfter := fs.Int("readmit-after", cluster.DefaultReadmitAfter, "consecutive successful probes before an ejected replica is readmitted")
	maxBody := fs.Int64("max-body", cluster.DefaultMaxBodyBytes, "largest accepted request body in bytes")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	logFormat := fs.String("log-format", "text", `structured access-log format: "text", "json", or "off"`)
	metricsOn := fs.Bool("metrics", true, "expose Prometheus metrics at /metrics")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 || *replicas == "" {
		fmt.Fprintln(stderr, "usage: vsfs-gateway -replicas URL[,URL...] [flags]")
		fs.PrintDefaults()
		return 2
	}
	logger, err := obs.NewLogger(stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintln(stderr, "vsfs-gateway:", err)
		return 2
	}

	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		urls = append(urls, u)
	}
	gw, err := cluster.New(cluster.Config{
		Replicas:       urls,
		VirtualNodes:   *vnodes,
		LoadFactor:     *loadFactor,
		MaxAttempts:    *attempts,
		RetryBase:      *retryBase,
		RetryCap:       *retryCap,
		AttemptTimeout: *attemptTimeout,
		HedgeAfter:     *hedgeAfter,
		HedgeQuantile:  *hedgeQuantile,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		EjectAfter:     *ejectAfter,
		ReadmitAfter:   *readmitAfter,
		MaxBodyBytes:   *maxBody,
		Logger:         logger,
		DisableMetrics: !*metricsOn,
	})
	if err != nil {
		fmt.Fprintln(stderr, "vsfs-gateway:", err)
		return 2
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "vsfs-gateway:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: gw}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	fmt.Fprintf(stdout, "vsfs-gateway: vsfs %s %s\n", obs.Version, obs.GoVersion())
	fmt.Fprintf(stdout, "vsfs-gateway: listening on %s, %d replicas\n", ln.Addr(), len(urls))
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case <-ctx.Done():
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "vsfs-gateway:", err)
			return 1
		}
	}

	// Graceful shutdown: stop accepting, then drain proxied requests.
	fmt.Fprintln(stdout, "vsfs-gateway: shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "vsfs-gateway: shutdown:", err)
	}
	if err := gw.Close(drainCtx); err != nil {
		fmt.Fprintln(stderr, "vsfs-gateway: drain:", err)
		return 1
	}
	return 0
}
