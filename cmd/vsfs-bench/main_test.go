package main

import (
	"strings"
	"testing"
)

func TestTable2SingleBench(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bench", "du", "-table", "2", "-sanity"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "du") || !strings.Contains(out.String(), "# Nodes") {
		t.Errorf("table 2 missing content:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "sanity: du ok") {
		t.Error("sanity line missing")
	}
}

func TestUnknownBenchAndTable(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bench", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown bench exit = %d", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-bench", "du", "-table", "9"}, &out, &errb); code != 2 {
		t.Errorf("unknown table exit = %d", code)
	}
	if code := run([]string{"-zzz"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
}
