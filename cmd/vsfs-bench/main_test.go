package main

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"vsfs/internal/bench"
)

func TestTable2SingleBench(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bench", "du", "-table", "2", "-sanity"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "du") || !strings.Contains(out.String(), "# Nodes") {
		t.Errorf("table 2 missing content:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "sanity: du ok") {
		t.Error("sanity line missing")
	}
}

func TestUnknownBenchAndTable(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bench", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown bench exit = %d", code)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-bench", "du", "-table", "9"}, &out, &errb); code != 2 {
		t.Errorf("unknown table exit = %d", code)
	}
	if code := run([]string{"-zzz"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit = %d", code)
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bench", "du", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	var rep bench.JSONReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Bench != "du" {
		t.Fatalf("rows = %+v, want one row for du", rep.Rows)
	}
	r := rep.Rows[0]
	if r.Nodes <= 0 || r.DirectEdges <= 0 {
		t.Errorf("Table II fields empty: %+v", r)
	}
	if r.SFSMs <= 0 || r.VSFSMs <= 0 || r.Speedup <= 0 || r.MemRatio <= 0 {
		t.Errorf("Table III fields empty: %+v", r)
	}
	if r.CfgfreeMs <= 0 || r.CfgfreeMemMB <= 0 {
		t.Errorf("cfgfree fields empty: %+v", r)
	}
	if len(rep.Backends) != 4 {
		t.Fatalf("backends = %+v, want 4 rows for du", rep.Backends)
	}
	seen := map[string]bool{}
	for _, br := range rep.Backends {
		seen[br.Backend] = true
	}
	for _, b := range []string{"andersen", "sfs", "vsfs", "cfgfree"} {
		if !seen[b] {
			t.Errorf("backend rows missing %q: %+v", b, rep.Backends)
		}
	}
	// The geo mean is computed as exp(mean(log x)) and can be off by an
	// ulp even for a single row, so compare with a relative tolerance.
	if diff := math.Abs(rep.GeoMeanSpeedup - r.Speedup); diff > 1e-9*r.Speedup {
		t.Errorf("geo mean %v != single-row speedup %v", rep.GeoMeanSpeedup, r.Speedup)
	}
}

func TestBackendsTable(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bench", "du", "-table", "backends"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	for _, want := range []string{"Backend comparison", "du", "cfree t"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("backends table missing %q:\n%s", want, out.String())
		}
	}
}
