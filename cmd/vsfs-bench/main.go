// Command vsfs-bench regenerates the paper's evaluation tables on the
// synthetic benchmark suite:
//
//	vsfs-bench -table 2            Table II (benchmark characteristics)
//	vsfs-bench -table 3            Table III (time and memory)
//	vsfs-bench -table backends     per-backend comparison (andersen/sfs/vsfs/cfgfree)
//	vsfs-bench -table parallel     sequential vs sharded parallel VSFS (needs -parallel)
//	vsfs-bench -table all          all of the above
//	vsfs-bench -parallel 4         also time the sharded engine at N workers
//	vsfs-bench -sweep              redundancy sweep (Section V shape claim)
//	vsfs-bench -ablation           on-the-fly vs auxiliary call graph
//	vsfs-bench -versions           versioning effectiveness (sharing factors)
//	vsfs-bench -bench du,bake      restrict to named benchmarks
//	vsfs-bench -runs 5             timed repetitions per analysis
//	vsfs-bench -memlimit 8192      MB cap for the SFS OOM marker
//	vsfs-bench -sanity             verify SFS ≡ VSFS on every profile
//	vsfs-bench -json               emit the table rows as JSON (BENCH artifacts)
//	vsfs-bench -compare base.json  gate against a committed baseline (exit 1 on regression)
//
// -compare reads a previously committed vsfs-bench -json artifact and
// fails (exit 1) when any (bench, backend) pair regresses beyond
// -threshold percent in time or -mem-threshold percent in modelled
// memory, or newly OOMs. It composes with -json: the current report
// still goes to stdout (so CI can archive it) while regressions go to
// stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"vsfs/internal/bench"
	"vsfs/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vsfs-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.String("table", "all", "which table to produce: 2, 3, backends, parallel, or all")
	runs := fs.Int("runs", 1, "timed repetitions per analysis")
	memLimit := fs.Int64("memlimit", 0, "modelled-memory OOM threshold in MB (0 = off)")
	parallel := fs.Int("parallel", 0, "also time the sharded parallel VSFS engine at this worker count (0 = off)")
	benches := fs.String("bench", "", "comma-separated benchmark names (default: all 15)")
	sweep := fs.Bool("sweep", false, "run the redundancy sweep instead of the tables")
	ablation := fs.Bool("ablation", false, "run the call-graph ablation instead of the tables")
	versions := fs.Bool("versions", false, "report versioning effectiveness (sharing factors)")
	sanity := fs.Bool("sanity", false, "check SFS ≡ VSFS on each profile before timing")
	jsonOut := fs.Bool("json", false, "emit the table rows as machine-readable JSON instead of formatted tables")
	comparePath := fs.String("compare", "", "baseline vsfs-bench -json artifact to gate against (exit 1 on regression)")
	threshold := fs.Float64("threshold", 50, "with -compare: max tolerated time regression in percent (<=0 disables)")
	memThreshold := fs.Float64("mem-threshold", 25, "with -compare: max tolerated modelled-memory regression in percent (<=0 disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *sweep {
		points := bench.RunSweep([]float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}, stderr)
		fmt.Fprint(stdout, bench.FormatSweep(points))
		return 0
	}

	profiles := workload.Profiles()
	if *benches != "" {
		var chosen []workload.Profile
		for _, name := range strings.Split(*benches, ",") {
			p := workload.ProfileByName(strings.TrimSpace(name))
			if p == nil {
				fmt.Fprintf(stderr, "unknown benchmark %q; known:", name)
				for _, q := range profiles {
					fmt.Fprintf(stderr, " %s", q.Name)
				}
				fmt.Fprintln(stderr)
				return 2
			}
			chosen = append(chosen, *p)
		}
		profiles = chosen
	}

	if *versions {
		rows := bench.RunVersionStats(profiles, stderr)
		fmt.Fprint(stdout, bench.FormatVersionStats(rows))
		return 0
	}

	if *ablation {
		rows := bench.RunCallGraphAblation(profiles, stderr)
		fmt.Fprint(stdout, bench.FormatAblation(rows))
		return 0
	}

	if *sanity {
		for _, p := range profiles {
			if err := bench.Sanity(p); err != nil {
				fmt.Fprintf(stderr, "sanity: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "sanity: %s ok\n", p.Name)
		}
	}

	if *table == "parallel" && *parallel < 2 {
		fmt.Fprintln(stderr, "-table parallel needs -parallel >= 2")
		return 2
	}
	opts := bench.Options{Runs: *runs, MemLimit: *memLimit << 20, Parallel: *parallel}
	rows := bench.Run(profiles, opts, stderr)

	// gate compares current rows against the committed baseline; it runs
	// after the report is printed so CI archives the artifact either way.
	gate := func() int {
		if *comparePath == "" {
			return 0
		}
		f, err := os.Open(*comparePath)
		if err != nil {
			fmt.Fprintln(stderr, "vsfs-bench:", err)
			return 1
		}
		baseline, err := bench.ReadJSONReport(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(stderr, "vsfs-bench:", err)
			return 1
		}
		regs := bench.Compare(baseline, bench.JSONReportOf(rows), *threshold, *memThreshold)
		if len(regs) == 0 {
			fmt.Fprintf(stderr, "vsfs-bench: no regressions vs %s (time>+%.0f%%, mem>+%.0f%%)\n",
				*comparePath, *threshold, *memThreshold)
			return 0
		}
		fmt.Fprint(stderr, bench.FormatRegressions(regs))
		fmt.Fprintf(stderr, "vsfs-bench: %d regression(s) vs %s\n", len(regs), *comparePath)
		return 1
	}

	if *jsonOut {
		data, err := json.MarshalIndent(bench.JSONReportOf(rows), "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "vsfs-bench:", err)
			return 1
		}
		stdout.Write(append(data, '\n'))
		return gate()
	}

	switch *table {
	case "2":
		fmt.Fprint(stdout, bench.FormatTable2(rows))
	case "3":
		fmt.Fprint(stdout, bench.FormatTable3(rows))
	case "backends":
		fmt.Fprint(stdout, bench.FormatBackends(rows))
	case "parallel":
		fmt.Fprint(stdout, bench.FormatParallel(rows, *parallel))
	case "all":
		fmt.Fprint(stdout, bench.FormatTable2(rows))
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, bench.FormatTable3(rows))
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, bench.FormatBackends(rows))
		if *parallel >= 2 {
			fmt.Fprintln(stdout)
			fmt.Fprint(stdout, bench.FormatParallel(rows, *parallel))
		}
	default:
		fmt.Fprintf(stderr, "unknown -table %q\n", *table)
		return 2
	}
	return gate()
}
