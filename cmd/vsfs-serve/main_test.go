package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeEndToEnd boots the daemon on an ephemeral port, exercises
// every endpoint over real HTTP, and shuts it down via context
// cancellation (the same path a SIGTERM takes).
func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	var out, errb strings.Builder
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0"}, ctx, ready, &out, &errb)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz: %d %s", resp.StatusCode, body)
	}

	src := `int main() { int a; int *p; p = &a; return 0; }`
	payload := fmt.Sprintf(`{"source":%q}`, src)
	resp, err = http.Post(base+"/analyze", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/analyze: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Vsfs-Cache"); got != "miss" {
		t.Fatalf("first analyze cache header = %q, want miss", got)
	}

	qpayload := fmt.Sprintf(`{"source":%q,"kind":"points-to","func":"main","var":"p"}`, src)
	resp, err = http.Post(base+"/query", "application/json", strings.NewReader(qpayload))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/query: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Vsfs-Cache"); got != "hit" {
		t.Fatalf("query after analyze cache header = %q, want hit", got)
	}
	var q struct {
		PointsTo []string `json:"pointsTo"`
	}
	if err := json.Unmarshal(body, &q); err != nil {
		t.Fatal(err)
	}
	if len(q.PointsTo) != 1 || q.PointsTo[0] != "main.a" {
		t.Fatalf("points-to(main.p) = %v, want [main.a]", q.PointsTo)
	}

	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"solvesOK": 1`) {
		t.Fatalf("/stats: %d %s", resp.StatusCode, body)
	}

	// /metrics is mounted by default and renders the same counters in
	// Prometheus text format; pprof stays unmounted without -pprof.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "vsfs_solve_seconds_count 1") {
		t.Fatalf("/metrics: %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/debug/pprof/ without -pprof = %d, want 404", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit = %d; stderr: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("missing shutdown log; stdout: %s", out.String())
	}
}

// TestServeGovernanceFlags boots with the resource-governance knobs
// set and verifies the daemon still solves and exports the governance
// counters.
func TestServeGovernanceFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	var out, errb strings.Builder
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0",
			"-max-steps", "1000000000", "-max-mem", "1000000000",
			"-breaker-threshold", "5", "-breaker-open", "10s"},
			ctx, ready, &out, &errb)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}
	base := "http://" + addr

	src := `int main() { int a; int *p; p = &a; return 0; }`
	resp, err := http.Post(base+"/analyze", "application/json",
		strings.NewReader(fmt.Sprintf(`{"source":%q}`, src)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/analyze under budgets: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Vsfs-Degraded") != "" {
		t.Fatal("generous budget degraded the solve")
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"vsfs_shed_requests_total 0",
		"vsfs_degraded_results_total 0",
		"vsfs_breaker_opens_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit = %d; stderr: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestServeBadFlags(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bogus"}, context.Background(), nil, &out, &errb); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if code := run([]string{"extra-arg"}, context.Background(), nil, &out, &errb); code != 2 {
		t.Fatalf("positional arg: exit = %d, want 2", code)
	}
	if code := run([]string{"-log-format", "xml"}, context.Background(), nil, &out, &errb); code != 2 {
		t.Fatalf("bad log format: exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown log format") {
		t.Fatalf("missing log-format error; stderr: %s", errb.String())
	}
}

// TestServeTelemetryFlags boots with the observability knobs flipped:
// JSON access logs, pprof on, metrics off.
func TestServeTelemetryFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan string, 1)
	var out, errb strings.Builder
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{"-addr", "127.0.0.1:0", "-log-format", "json", "-pprof", "-metrics=false"},
			ctx, ready, &out, &errb)
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("/metrics with -metrics=false = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ with -pprof = %d, want 200", resp.StatusCode)
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit = %d; stderr: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(errb.String(), `"path":"/metrics"`) {
		t.Fatalf("JSON access log missing; stderr: %s", errb.String())
	}
}
