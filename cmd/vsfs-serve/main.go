// Command vsfs-serve runs the pointer-analysis service: a long-running
// HTTP/JSON daemon that solves mini-C or textual-IR programs on demand
// and answers points-to, alias, call-graph, witness, and checker
// queries, with a content-addressed result cache, single-flight
// deduplication, a bounded worker pool, and per-request cancellation.
//
//	vsfs-serve -addr :8080
//
//	curl localhost:8080/healthz
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
//	curl -d '{"source":"int main(){int a; int *p; p = &a; return 0;}"}' localhost:8080/analyze
//	curl -d '{"source":"...","kind":"points-to","func":"main","var":"p"}' localhost:8080/query
//
// Telemetry: -log-format selects the structured access-log format
// (text, json, or off), -metrics=false unmounts /metrics, and -pprof
// exposes the Go runtime profiles under /debug/pprof/.
//
// Resource governance: -max-steps and -max-mem bound the server-wide
// solve budget (split evenly across workers); a solve that blows its
// share degrades to the flow-insensitive result instead of failing.
// -breaker-threshold consecutive hard failures for one program open a
// per-program circuit for -breaker-open, answering further requests
// for it with 503 + Retry-After without burning a worker.
//
// The process exits cleanly on SIGINT/SIGTERM, draining in-flight
// solves for up to -drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vsfs/internal/obs"
	"vsfs/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], context.Background(), nil, os.Stdout, os.Stderr))
}

// run is the testable entry point. If ready is non-nil it receives the
// bound address once the listener is up. The server stops when ctx is
// done or a termination signal arrives.
func run(args []string, ctx context.Context, ready chan<- string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vsfs-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queue := fs.Int("queue", server.DefaultQueueDepth, "max solves waiting for a worker; beyond this requests get 503")
	timeout := fs.Duration("timeout", server.DefaultSolveTimeout, "per-solve wall-clock budget (<=0 disables)")
	cacheEntries := fs.Int("cache", server.DefaultCacheEntries, "result-cache capacity (solved programs)")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	logFormat := fs.String("log-format", "text", `structured access-log format: "text", "json", or "off"`)
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof profiles under /debug/pprof/")
	metricsOn := fs.Bool("metrics", true, "expose Prometheus metrics at /metrics")
	maxSteps := fs.Int64("max-steps", 0, "server-wide worklist-step budget, split across workers; over-budget solves degrade to Andersen (0 = no limit)")
	maxMem := fs.Int64("max-mem", 0, "server-wide points-to storage budget in bytes, split across workers (0 = no limit)")
	breakerThreshold := fs.Int("breaker-threshold", server.DefaultBreakerThreshold, "consecutive hard failures per program before its circuit opens (<0 disables)")
	breakerOpen := fs.Duration("breaker-open", server.DefaultBreakerOpenFor, "how long an opened per-program circuit rejects before a half-open probe")
	ledgerPath := fs.String("ledger", "", "append a run record per solve to this JSONL ledger, served at GET /runs")
	ledgerMax := fs.Int64("ledger-max-bytes", obs.DefaultLedgerMaxBytes, "rotate the ledger past this many bytes (one .1 generation kept)")
	traceDir := fs.String("trace-dir", "", "write one Chrome trace_event file per solve into this directory, tagged with the request ID")
	attr := fs.Bool("attr", false, "attribute solver cost to abstract objects on every solve (hot-object tables in reports, vsfs_attr_* metrics)")
	parallel := fs.Int("parallel", 0, "default worker count for the sharded parallel VSFS engine (<2 = sequential; requests may override with \"parallel\")")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: vsfs-serve [flags]")
		fs.PrintDefaults()
		return 2
	}
	logger, err := obs.NewLogger(stderr, *logFormat, slog.LevelInfo)
	if err != nil {
		fmt.Fprintln(stderr, "vsfs-serve:", err)
		return 2
	}

	var ledger *obs.Ledger
	if *ledgerPath != "" {
		ledger, err = obs.OpenLedger(*ledgerPath, *ledgerMax)
		if err != nil {
			fmt.Fprintln(stderr, "vsfs-serve:", err)
			return 1
		}
		defer ledger.Close()
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "vsfs-serve:", err)
			return 1
		}
	}

	solveTimeout := *timeout
	if solveTimeout <= 0 {
		solveTimeout = -1 // Config: negative disables the budget
	}
	svc := server.New(server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		SolveTimeout:     solveTimeout,
		CacheEntries:     *cacheEntries,
		StepBudget:       *maxSteps,
		MemBudget:        *maxMem,
		BreakerThreshold: *breakerThreshold,
		BreakerOpenFor:   *breakerOpen,
		Logger:           logger,
		EnablePprof:      *pprofOn,
		DisableMetrics:   !*metricsOn,
		Ledger:           ledger,
		TraceDir:         *traceDir,
		Attribution:      *attr,
		Parallel:         *parallel,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "vsfs-serve:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: svc}

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	fmt.Fprintf(stdout, "vsfs-serve: vsfs %s %s\n", obs.Version, obs.GoVersion())
	fmt.Fprintf(stdout, "vsfs-serve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case <-ctx.Done():
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "vsfs-serve:", err)
			return 1
		}
	}

	// Graceful shutdown: stop accepting, then drain in-flight solves.
	fmt.Fprintln(stdout, "vsfs-serve: shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(stderr, "vsfs-serve: shutdown:", err)
	}
	if err := svc.Close(drainCtx); err != nil {
		fmt.Fprintln(stderr, "vsfs-serve: drain:", err)
		return 1
	}
	return 0
}
