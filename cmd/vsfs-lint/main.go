// Command vsfs-lint runs the internal/lint analyzer suite: five
// custom static analyzers that enforce the repository's determinism,
// guard-budget, metric-registry and report-contract invariants at
// review time instead of leaving them to the fuzzing oracle.
//
// Usage:
//
//	vsfs-lint [flags] [packages]
//
// Packages default to ./... and accept the go list pattern syntax.
// Exit codes: 0 clean, 1 findings, 2 usage or load failure.
//
//	-run list      comma-separated analyzer subset (default: all)
//	-list          print the analyzers and their contracts, then exit
//	-sarif         emit SARIF 2.1.0 on stdout instead of text
//	-update-schema regenerate internal/lint/report_schema.json from
//	               the current structs (the append-only golden the
//	               reportcontract analyzer diffs against), then exit
//	-C dir         change to dir before resolving packages
//
// Findings are suppressed in source with
//
//	//vsfs:lint-ignore <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory and
// unused or malformed directives are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vsfs/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("vsfs-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runList      = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		list         = fs.Bool("list", false, "list analyzers and exit")
		sarif        = fs.Bool("sarif", false, "emit SARIF 2.1.0 instead of text")
		updateSchema = fs.Bool("update-schema", false, "regenerate the reportcontract golden schema and exit")
		chdir        = fs.String("C", ".", "directory to resolve packages from")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *runList != "" {
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "vsfs-lint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	passes, err := lint.Load(*chdir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "vsfs-lint: %v\n", err)
		return 2
	}
	if len(passes) == 0 {
		fmt.Fprintln(stderr, "vsfs-lint: no packages matched")
		return 2
	}

	if *updateSchema {
		sch, err := lint.BuildSchema(passes)
		if err != nil {
			fmt.Fprintf(stderr, "vsfs-lint: -update-schema: %v\n", err)
			return 2
		}
		path := filepath.Join(passes[0].ModuleRoot, filepath.FromSlash(lint.SchemaRelPath))
		if err := lint.WriteSchema(path, sch); err != nil {
			fmt.Fprintf(stderr, "vsfs-lint: -update-schema: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "wrote %s (%d contract types)\n", path, len(sch.Types))
		return 0
	}

	findings := lint.Run(passes, analyzers)
	if *sarif {
		if err := lint.WriteSARIF(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "vsfs-lint: writing SARIF: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "vsfs-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
