package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs run() with stdout/stderr redirected to temp files and
// returns (exitCode, stdout, stderr).
func capture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, outF, errF)
	read := func(f *os.File) string {
		data, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		return string(data)
	}
	return code, read(outF), read(errF)
}

func TestList(t *testing.T) {
	code, out, _ := capture(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d, want 0", code)
	}
	for _, name := range []string{"detrange", "noclock", "guardtick", "metricname", "reportcontract"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	code, _, errOut := capture(t, "-run", "nonsense", "-list=false")
	if code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown analyzer") {
		t.Errorf("stderr missing diagnosis:\n%s", errOut)
	}
}

// TestCleanPackage loads one real (small) module package through the
// production `go list` loader and expects a clean detrange run.
func TestCleanPackage(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	code, out, errOut := capture(t, "-C", root, "-run", "detrange", "./internal/bitset")
	if code != 0 {
		t.Fatalf("exited %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}
