// Command vsfs-gen emits synthetic workloads as textual IR, either from
// one of the 15 named benchmark profiles or from explicit knobs:
//
//	vsfs-gen -profile bake > bake.vir
//	vsfs-gen -seed 7 -funcs 20 -instrs 40 -heap 0.5 > prog.vir
//
// The output parses back with cmd/vsfs and the irparse package.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vsfs/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vsfs-gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profile := fs.String("profile", "", "named benchmark profile (du … hyriseConsole)")
	list := fs.Bool("list", false, "list profile names and exit")
	seed := fs.Int64("seed", 1, "generator seed")
	funcs := fs.Int("funcs", 10, "number of functions")
	instrs := fs.Int("instrs", 40, "instruction budget per function")
	globals := fs.Int("globals", 4, "number of globals")
	heap := fs.Float64("heap", 0.3, "heap allocation fraction")
	chains := fs.Float64("chains", 0.15, "pointer-chase chain fraction")
	chainLen := fs.Int("chainlen", 3, "pointer-chase chain length")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, p := range workload.Profiles() {
			fmt.Fprintf(stdout, "%-14s %s\n", p.Name, p.Desc)
		}
		return 0
	}

	if *profile != "" {
		p := workload.ProfileByName(*profile)
		if p == nil {
			fmt.Fprintf(stderr, "vsfs-gen: unknown profile %q (use -list)\n", *profile)
			return 2
		}
		fmt.Fprint(stdout, p.Build().String())
		return 0
	}

	cfg := workload.DefaultRandomConfig()
	cfg.Funcs = *funcs
	cfg.InstrsPerFunc = *instrs
	cfg.Globals = *globals
	cfg.HeapFrac = *heap
	cfg.ChainFrac = *chains
	cfg.ChainLen = *chainLen
	fmt.Fprint(stdout, workload.Random(*seed, cfg).String())
	return 0
}
