package main

import (
	"strings"
	"testing"

	"vsfs/internal/irparse"
)

func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"du", "lynx", "hyriseConsole"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestGenerateParsesBack(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-seed", "3", "-funcs", "4", "-instrs", "15"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d: %s", code, errb.String())
	}
	if _, err := irparse.Parse(out.String()); err != nil {
		t.Fatalf("generated IR does not reparse: %v", err)
	}
}

func TestProfileOutput(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-profile", "du"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "func main()") {
		t.Error("profile output missing main")
	}
}

func TestUnknownProfile(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-profile", "nope"}, &out, &errb); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown profile") {
		t.Error("missing error message")
	}
}
