module vsfs

go 1.22
