package vsfs

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"vsfs/internal/guard"
)

// analyzeWith runs demoC under the given fault plan and budget.
func analyzeWith(t *testing.T, mode Mode, plan *guard.FaultPlan, b *guard.Budget) (*Result, error) {
	t.Helper()
	ctx := context.Background()
	if plan != nil {
		ctx = guard.WithFaults(ctx, plan)
	}
	ctx = guard.WithBudget(ctx, b)
	return AnalyzeContext(ctx, demoC, Options{Mode: mode})
}

func TestDegradeOnSolveBudget(t *testing.T) {
	// A slowdown fault in the solve phase charges a huge step count, so
	// the budget is guaranteed to survive every earlier phase and blow
	// in solve — deterministically, whatever the program's real cost.
	// The VSFS run then lands on the first ladder rung: the CFG-free
	// flow-sensitive backend, re-solved under a fresh budget.
	plan := guard.NewFaultPlan(guard.Fault{Phase: "solve", Step: 0, Kind: guard.FaultSlow})
	res, err := analyzeWith(t, VSFS, plan, guard.NewBudget(1<<30, 0, 0))
	if err != nil {
		t.Fatalf("AnalyzeContext: %v", err)
	}
	if !res.Degraded() {
		t.Fatal("result not degraded")
	}
	if res.Mode() != CFGFree || res.RequestedMode() != VSFS {
		t.Fatalf("Mode = %v, RequestedMode = %v, want cfgfree/vsfs", res.Mode(), res.RequestedMode())
	}
	phase, resource := res.DegradedCause()
	if phase != "solve" || resource != "steps" {
		t.Fatalf("DegradedCause = %q/%q", phase, resource)
	}
	if !strings.Contains(res.Degradation(), "CFG-free") {
		t.Fatalf("Degradation = %q, want mention of the CFG-free rung", res.Degradation())
	}
}

// TestLadderBottomsOutOnAndersen drives the run off BOTH rungs: the
// original breach in a pipeline phase plus a second fault targeting the
// cfgfree rung itself. Provenance must keep naming the original breach.
func TestLadderBottomsOutOnAndersen(t *testing.T) {
	plan := guard.NewFaultPlan(
		guard.Fault{Phase: "solve", Step: 0, Kind: guard.FaultSlow},
		guard.Fault{Phase: "cfgfree", Step: 0, Kind: guard.FaultSlow},
	)
	res, err := analyzeWith(t, VSFS, plan, guard.NewBudget(1<<30, 0, 0))
	if err != nil {
		t.Fatalf("AnalyzeContext: %v", err)
	}
	if !res.Degraded() || res.Mode() != FlowInsensitive {
		t.Fatalf("degraded=%v Mode=%v, want degraded andersen", res.Degraded(), res.Mode())
	}
	phase, resource := res.DegradedCause()
	if phase != "solve" || resource != "steps" {
		t.Fatalf("DegradedCause = %q/%q, want original breach solve/steps", phase, resource)
	}
	if !strings.Contains(res.Degradation(), "Andersen") {
		t.Fatalf("Degradation = %q, want mention of the Andersen fallback", res.Degradation())
	}
	plain, err := AnalyzeC(demoC, Options{Mode: FlowInsensitive})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dump() != plain.Dump() {
		t.Errorf("ladder-bottom Dump differs from standalone Andersen:\n%s\nvs\n%s",
			res.Dump(), plain.Dump())
	}
}

// TestDegradedEqualsStandaloneCFGFree pins the single-breach contract:
// whatever pipeline phase breaches, the answers must be exactly what a
// standalone -mode cfgfree run of the same source produces.
func TestDegradedEqualsStandaloneCFGFree(t *testing.T) {
	for _, phase := range []string{"memssa", "svfg", "solve"} {
		plan := guard.NewFaultPlan(guard.Fault{Phase: phase, Step: 0, Kind: guard.FaultSlow})
		deg, err := analyzeWith(t, VSFS, plan, guard.NewBudget(1<<30, 0, 0))
		if err != nil {
			t.Fatalf("%s: degraded run: %v", phase, err)
		}
		if !deg.Degraded() || deg.Mode() != CFGFree {
			t.Fatalf("%s: degraded=%v Mode=%v, want degraded cfgfree", phase, deg.Degraded(), deg.Mode())
		}
		plain, err := AnalyzeC(demoC, Options{Mode: CFGFree})
		if err != nil {
			t.Fatalf("%s: standalone run: %v", phase, err)
		}
		if deg.Dump() != plain.Dump() {
			t.Errorf("%s: degraded Dump differs from standalone cfgfree:\n%s\nvs\n%s",
				phase, deg.Dump(), plain.Dump())
		}
		dr, pr := deg.Report(), plain.Report()
		// The degraded program has been through (part of) the memory-SSA
		// rewrite, so instruction labels differ from the standalone run's
		// raw program even though the facts are identical; compare with
		// labels zeroed.
		for i := range dr.Findings {
			dr.Findings[i].Label = 0
		}
		for i := range pr.Findings {
			pr.Findings[i].Label = 0
		}
		db, _ := Report{Functions: dr.Functions, Findings: dr.Findings}.MarshalIndent()
		pb, _ := Report{Functions: pr.Functions, Findings: pr.Findings}.MarshalIndent()
		if !bytes.Equal(db, pb) {
			t.Errorf("%s: degraded facts differ from standalone cfgfree:\n%s\nvs\n%s", phase, db, pb)
		}
		if !dr.Degraded || dr.Degradation == "" {
			t.Errorf("%s: report degradation fields = %v %q", phase, dr.Degraded, dr.Degradation)
		}
		if pr.Degraded || pr.Degradation != "" {
			t.Errorf("%s: standalone run reports degradation", phase)
		}
		// Stats must be readable even when the SVFG was never built, and
		// must name the rung that actually answered.
		if s := deg.Stats(); s.Mode != "cfgfree" {
			t.Errorf("%s: degraded Stats mode = %q", phase, s.Mode)
		}
	}
}

func TestMemBudgetDegrades(t *testing.T) {
	plan := guard.NewFaultPlan(guard.Fault{Phase: "svfg", Step: 0, Kind: guard.FaultAllocSpike})
	res, err := analyzeWith(t, SFS, plan, guard.NewBudget(0, 1<<40, 0))
	if err != nil {
		t.Fatalf("AnalyzeContext: %v", err)
	}
	phase, resource := res.DegradedCause()
	if !res.Degraded() || phase != "svfg" || resource != "mem" {
		t.Fatalf("degraded=%v cause=%q/%q", res.Degraded(), phase, resource)
	}
	// The alloc-spike charge lives in the original budget; the rung's
	// fresh budget re-bases, so the CFG-free retry must succeed.
	if res.Mode() != CFGFree {
		t.Fatalf("Mode = %v, want cfgfree rung", res.Mode())
	}
}

// TestRequestedCFGFreeDegradesStraightToAndersen: the ladder has no
// rung between cfgfree and the auxiliary result.
func TestRequestedCFGFreeDegradesStraightToAndersen(t *testing.T) {
	plan := guard.NewFaultPlan(guard.Fault{Phase: "solve", Step: 0, Kind: guard.FaultSlow})
	res, err := analyzeWith(t, CFGFree, plan, guard.NewBudget(1<<30, 0, 0))
	if err != nil {
		t.Fatalf("AnalyzeContext: %v", err)
	}
	if !res.Degraded() || res.Mode() != FlowInsensitive || res.RequestedMode() != CFGFree {
		t.Fatalf("degraded=%v Mode=%v RequestedMode=%v", res.Degraded(), res.Mode(), res.RequestedMode())
	}
}

func TestPanicIsolatedInEveryPhase(t *testing.T) {
	for _, phase := range guard.PipelinePhases {
		plan := guard.NewFaultPlan(guard.Fault{Phase: phase, Step: 0, Kind: guard.FaultPanic})
		res, err := analyzeWith(t, VSFS, plan, nil)
		var pe *guard.PhaseError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: err = %v (res=%v), want *guard.PhaseError", phase, err, res)
		}
		if pe.Phase != phase {
			t.Fatalf("PhaseError.Phase = %q, want %q", pe.Phase, phase)
		}
		if pe.ProgramHash != guard.Hash([]byte(demoC)) {
			t.Fatalf("%s: PhaseError.ProgramHash = %q", phase, pe.ProgramHash)
		}
		if res != nil {
			t.Fatalf("%s: panic run returned a result", phase)
		}
	}
}

// TestPanicInLadderRungPropagates: a panic inside the cfgfree rung is a
// correctness failure, not a resource problem — it must surface as a
// *guard.PhaseError, never silently bottom out on Andersen.
func TestPanicInLadderRungPropagates(t *testing.T) {
	plan := guard.NewFaultPlan(
		guard.Fault{Phase: "solve", Step: 0, Kind: guard.FaultSlow},
		guard.Fault{Phase: "cfgfree", Step: 0, Kind: guard.FaultPanic},
	)
	res, err := analyzeWith(t, VSFS, plan, guard.NewBudget(1<<30, 0, 0))
	var pe *guard.PhaseError
	if !errors.As(err, &pe) || res != nil {
		t.Fatalf("res=%v err=%v, want *guard.PhaseError", res, err)
	}
	if pe.Phase != "cfgfree" {
		t.Fatalf("PhaseError.Phase = %q, want cfgfree", pe.Phase)
	}
}

func TestCancellationNeverDegrades(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := AnalyzeContext(ctx, demoC, Options{Mode: VSFS})
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("cancelled analyze: res=%v err=%v", res, err)
	}
}

func TestAndersenBudgetBreachFailsOutright(t *testing.T) {
	// A breach during the auxiliary phase has no fallback to offer.
	plan := guard.NewFaultPlan(guard.Fault{Phase: "andersen", Step: 0, Kind: guard.FaultSlow})
	res, err := analyzeWith(t, VSFS, plan, guard.NewBudget(1<<30, 0, 0))
	var be *guard.ErrBudgetExceeded
	if !errors.As(err, &be) || res != nil {
		t.Fatalf("res=%v err=%v, want *ErrBudgetExceeded", res, err)
	}
	if be.Phase != "andersen" {
		t.Fatalf("breach phase = %q", be.Phase)
	}
}
